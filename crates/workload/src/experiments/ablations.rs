//! Ablations of the design choices `DESIGN.md` calls out:
//!
//! * **A1 horizon** — how the local-view radius (the paper fixes 2 hops)
//!   affects correctness;
//! * **A2 routing policy** — exact shortest-widest vs the single-pass
//!   lexicographic Dijkstra when building the overlay routing table;
//! * **A3 reductions** — the full reduction plan (path reduction +
//!   split-and-merge) vs the plain chain-cover fallback;
//! * **A4 knowledge model** — hop-filtered global tables vs literal per-node
//!   sub-overlay views in the distributed protocol;
//! * **A5 topology** — Waxman vs GT-ITM-style transit–stub networks.

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{FederationAlgorithm, GlobalOptimalAlgorithm, SflowAlgorithm};
use sflow_core::baseline::VirtualEdges;
use sflow_core::metrics::correctness_coefficient;
use sflow_core::reduction::{chain_cover, Plan};
use sflow_core::{FederationContext, FlowGraph, Selection, Solver};
use sflow_routing::shortest_widest::all_pairs_lexicographic;

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, build_trial_on, mixed_kind, TopologyKind};
use crate::table::{f1, f3, Table};

/// A1: mean correctness per horizon at a fixed network size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HorizonRow {
    /// Hop horizon (`None` = full view).
    pub horizon: Option<usize>,
    /// Mean correctness coefficient.
    pub correctness: f64,
    /// Fraction of trials that federated successfully.
    pub success: f64,
}

/// Runs the horizon ablation at the largest configured size.
pub fn run_horizon(cfg: &SweepConfig) -> Vec<HorizonRow> {
    let size = *cfg.sizes.last().expect("non-empty sizes");
    let horizons: [Option<usize>; 4] = [Some(1), Some(2), Some(3), None];
    let mut rows = Vec::new();
    for horizon in horizons {
        let mut scores = Vec::new();
        let mut successes = 0usize;
        let mut total = 0usize;
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let Ok(opt) = GlobalOptimalAlgorithm.federate(&ctx, &t.requirement) else {
                continue;
            };
            total += 1;
            let alg = match horizon {
                Some(h) => SflowAlgorithm::with_hop_limit(h),
                None => SflowAlgorithm::with_full_view(),
            };
            match alg.federate(&ctx, &t.requirement) {
                Ok(flow) => {
                    successes += 1;
                    scores.push(correctness_coefficient(&flow, &opt));
                }
                Err(_) => scores.push(0.0),
            }
        }
        rows.push(HorizonRow {
            horizon,
            correctness: mean(&scores),
            success: if total == 0 {
                0.0
            } else {
                successes as f64 / total as f64
            },
        });
    }
    rows
}

/// Renders the horizon ablation.
pub fn horizon_table(rows: &[HorizonRow]) -> Table {
    let mut t = Table::new(
        "A1 — local-view horizon vs correctness",
        &["horizon", "correctness", "success"],
    );
    for r in rows {
        t.row(vec![
            r.horizon.map_or("full".into(), |h| h.to_string()),
            f3(r.correctness),
            f3(r.success),
        ]);
    }
    t
}

/// A2: flow quality when the routing table uses the exact vs the
/// lexicographic shortest-widest algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoutingPolicyRow {
    /// Network size (hosts).
    pub size: usize,
    /// Mean flow latency with the exact table (µs).
    pub exact_latency_us: f64,
    /// Mean flow latency with the lexicographic table (µs).
    pub lexicographic_latency_us: f64,
    /// Mean bandwidth (identical by construction — widest is exact in both).
    pub bandwidth_kbps: f64,
}

/// Runs the routing-policy ablation.
pub fn run_routing_policy(cfg: &SweepConfig) -> Vec<RoutingPolicyRow> {
    let mut rows = Vec::new();
    for &size in &cfg.sizes {
        let mut exact_l = Vec::new();
        let mut lex_l = Vec::new();
        let mut bw = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let exact_ctx = t.fixture.context();
            let lex_ap = all_pairs_lexicographic(t.fixture.overlay.graph());
            let lex_ctx = FederationContext::new(&t.fixture.overlay, &lex_ap, t.fixture.source);
            let alg = SflowAlgorithm::default();
            if let (Ok(e), Ok(l)) = (
                alg.federate(&exact_ctx, &t.requirement),
                alg.federate(&lex_ctx, &t.requirement),
            ) {
                exact_l.push(e.latency().as_micros() as f64);
                lex_l.push(l.latency().as_micros() as f64);
                bw.push(e.bandwidth().as_kbps() as f64);
            }
        }
        rows.push(RoutingPolicyRow {
            size,
            exact_latency_us: mean(&exact_l),
            lexicographic_latency_us: mean(&lex_l),
            bandwidth_kbps: mean(&bw),
        });
    }
    rows
}

/// Renders the routing-policy ablation.
pub fn routing_policy_table(rows: &[RoutingPolicyRow]) -> Table {
    let mut t = Table::new(
        "A2 — routing policy: exact vs lexicographic shortest-widest (latency µs)",
        &["size", "exact", "lexicographic", "bandwidth"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.exact_latency_us),
            f1(r.lexicographic_latency_us),
            f1(r.bandwidth_kbps),
        ]);
    }
    t
}

/// A3: quality of the full reduction plan vs the chain-cover fallback.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReductionRow {
    /// Network size (hosts).
    pub size: usize,
    /// Mean bandwidth with the full plan (kbit/s).
    pub plan_kbps: f64,
    /// Mean bandwidth with cover-only solving (kbit/s).
    pub cover_kbps: f64,
    /// Mean latency with the full plan (µs).
    pub plan_latency_us: f64,
    /// Mean latency with cover-only solving (µs).
    pub cover_latency_us: f64,
}

fn solve_cover_only(
    ctx: &FederationContext<'_>,
    req: &sflow_core::ServiceRequirement,
) -> Result<FlowGraph, sflow_core::FederationError> {
    let solver = Solver::new(ctx).with_hop_limit(2);
    let plan = Plan::Cover {
        chains: chain_cover(req),
    };
    let mut pinned: Selection = [(req.source(), ctx.source_instance())]
        .into_iter()
        .collect();
    solver.solve_plan(&plan, &mut pinned, &VirtualEdges::new())?;
    FlowGraph::assemble(ctx, req, &pinned)
}

/// Runs the reductions ablation.
pub fn run_reductions(cfg: &SweepConfig) -> Vec<ReductionRow> {
    let mut rows = Vec::new();
    for &size in &cfg.sizes {
        let mut plan_bw = Vec::new();
        let mut cover_bw = Vec::new();
        let mut plan_lat = Vec::new();
        let mut cover_lat = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            if let (Ok(p), Ok(c)) = (
                SflowAlgorithm::default().federate(&ctx, &t.requirement),
                solve_cover_only(&ctx, &t.requirement),
            ) {
                plan_bw.push(p.bandwidth().as_kbps() as f64);
                cover_bw.push(c.bandwidth().as_kbps() as f64);
                plan_lat.push(p.latency().as_micros() as f64);
                cover_lat.push(c.latency().as_micros() as f64);
            }
        }
        rows.push(ReductionRow {
            size,
            plan_kbps: mean(&plan_bw),
            cover_kbps: mean(&cover_bw),
            plan_latency_us: mean(&plan_lat),
            cover_latency_us: mean(&cover_lat),
        });
    }
    rows
}

/// Renders the reductions ablation.
pub fn reductions_table(rows: &[ReductionRow]) -> Table {
    let mut t = Table::new(
        "A3 — reduction plan vs chain-cover fallback",
        &["size", "plan bw", "cover bw", "plan lat", "cover lat"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.plan_kbps),
            f1(r.cover_kbps),
            f1(r.plan_latency_us),
            f1(r.cover_latency_us),
        ]);
    }
    t
}

/// A4: the two models of limited knowledge in the distributed protocol —
/// hop-filtered global tables vs genuine per-node sub-overlay views.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewModelRow {
    /// Network size (hosts).
    pub size: usize,
    /// Success rate under the hop-filter model.
    pub hop_filter_success: f64,
    /// Success rate under the literal local-view model.
    pub local_view_success: f64,
    /// Mean bandwidth under the hop-filter model (successes only, kbit/s).
    pub hop_filter_kbps: f64,
    /// Mean bandwidth under the local-view model (successes only, kbit/s).
    pub local_view_kbps: f64,
}

/// Runs the view-model ablation through the distributed simulator.
pub fn run_view_model(cfg: &SweepConfig) -> Vec<ViewModelRow> {
    use sflow_sim::protocol::ViewModel;
    use sflow_sim::{run_distributed, SimConfig};
    let mut rows = Vec::new();
    for &size in &cfg.sizes {
        let mut hf_ok = 0usize;
        let mut lv_ok = 0usize;
        let mut hf_bw = Vec::new();
        let mut lv_bw = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let hf = SimConfig::default();
            let lv = SimConfig {
                view_model: ViewModel::LocalView,
                ..SimConfig::default()
            };
            if let Ok(out) = run_distributed(&ctx, &t.requirement, &hf) {
                hf_ok += 1;
                hf_bw.push(out.flow.bandwidth().as_kbps() as f64);
            }
            if let Ok(out) = run_distributed(&ctx, &t.requirement, &lv) {
                lv_ok += 1;
                lv_bw.push(out.flow.bandwidth().as_kbps() as f64);
            }
        }
        let n = cfg.trials.max(1) as f64;
        rows.push(ViewModelRow {
            size,
            hop_filter_success: hf_ok as f64 / n,
            local_view_success: lv_ok as f64 / n,
            hop_filter_kbps: mean(&hf_bw),
            local_view_kbps: mean(&lv_bw),
        });
    }
    rows
}

/// Renders the view-model ablation.
pub fn view_model_table(rows: &[ViewModelRow]) -> Table {
    let mut t = Table::new(
        "A4 — knowledge model: hop filter vs literal 2-hop local views",
        &["size", "hf success", "lv success", "hf bw", "lv bw"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f3(r.hop_filter_success),
            f3(r.local_view_success),
            f1(r.hop_filter_kbps),
            f1(r.local_view_kbps),
        ]);
    }
    t
}

/// A5: topology sensitivity — does the Fig. 10(a) result depend on the
/// underlying-network family?
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyRow {
    /// Which family (`"waxman"` / `"transit-stub"`).
    pub topology: String,
    /// Mean correctness of sFlow vs the global optimum.
    pub sflow: f64,
    /// Mean correctness of the fixed algorithm.
    pub fixed: f64,
    /// Mean correctness of the random algorithm.
    pub random: f64,
}

/// Runs the topology-sensitivity ablation at the largest configured size.
pub fn run_topology(cfg: &SweepConfig) -> Vec<TopologyRow> {
    use sflow_core::metrics::correctness_coefficient;
    let size = *cfg.sizes.last().expect("non-empty sizes");
    let mut rows = Vec::new();
    for (label, topo) in [
        ("waxman", TopologyKind::Waxman),
        ("transit-stub", TopologyKind::TransitStub),
    ] {
        let mut acc = [Vec::new(), Vec::new(), Vec::new()];
        for trial in 0..cfg.trials {
            let t = build_trial_on(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                topo,
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let Ok(opt) = GlobalOptimalAlgorithm.federate(&ctx, &t.requirement) else {
                continue;
            };
            let algos: [&dyn FederationAlgorithm; 3] = [
                &SflowAlgorithm::default(),
                &sflow_core::algorithms::FixedAlgorithm,
                &sflow_core::algorithms::RandomAlgorithm::with_seed(cfg.base_seed ^ trial as u64),
            ];
            for (i, alg) in algos.iter().enumerate() {
                let score = alg
                    .federate(&ctx, &t.requirement)
                    .map(|f| correctness_coefficient(&f, &opt))
                    .unwrap_or(0.0);
                acc[i].push(score);
            }
        }
        rows.push(TopologyRow {
            topology: label.into(),
            sflow: mean(&acc[0]),
            fixed: mean(&acc[1]),
            random: mean(&acc[2]),
        });
    }
    rows
}

/// Renders the topology-sensitivity ablation.
pub fn topology_table(rows: &[TopologyRow]) -> Table {
    let mut t = Table::new(
        "A5 — topology sensitivity (correctness at the largest size)",
        &["topology", "sflow", "fixed", "random"],
    );
    for r in rows {
        t.row(vec![
            r.topology.clone(),
            f3(r.sflow),
            f3(r.fixed),
            f3(r.random),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_families_both_run() {
        let rows = run_topology(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.sflow >= r.random,
                "{}: {} < {}",
                r.topology,
                r.sflow,
                r.random
            );
            assert!(r.sflow > 0.5, "{}", r.topology);
        }
    }

    #[test]
    fn view_models_both_mostly_succeed() {
        let rows = run_view_model(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.hop_filter_success > 0.5);
            // The literal model has strictly less information; it may fail
            // more but must still usually work on these dense smoke worlds.
            assert!(r.local_view_success > 0.0);
            assert!(r.local_view_success <= r.hop_filter_success + 1e-9 + 0.25);
        }
    }

    #[test]
    fn horizon_improves_with_radius() {
        let rows = run_horizon(&SweepConfig::smoke());
        assert_eq!(rows.len(), 4);
        // Full view is at least as correct as a 1-hop view.
        let h1 = rows[0].correctness;
        let full = rows[3].correctness;
        assert!(full >= h1 - 1e-9, "full {full} < h1 {h1}");
    }

    #[test]
    fn routing_policy_latency_never_improves_with_lexicographic() {
        for r in run_routing_policy(&SweepConfig::smoke()) {
            assert!(r.lexicographic_latency_us >= r.exact_latency_us - 1e-9);
        }
    }

    #[test]
    fn reductions_never_hurt_bandwidth() {
        for r in run_reductions(&SweepConfig::smoke()) {
            assert!(r.plan_kbps >= r.cover_kbps - 1e-9);
        }
    }
}
