//! Experiment runners: one per figure of the paper plus the ablations.
//!
//! All experiments share a [`SweepConfig`]: a sweep over network sizes with
//! several seeded trials per size, averaging each algorithm's metric.
//! Failed federations score zero correctness / zero bandwidth and are
//! excluded from latency averages (matching how the paper treats the
//! service-path algorithm's failures on non-path requirements).

pub mod ablations;
pub mod bandwidth;
pub mod churn;
pub mod correctness;
pub mod extensions;
pub mod latency;
pub mod timing;

use serde::{Deserialize, Serialize};

/// Sweep parameters shared by all experiments.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Underlying-network sizes (hosts), the x-axis of every Fig. 10 plot.
    pub sizes: Vec<usize>,
    /// Trials (seeds) per size.
    pub trials: usize,
    /// Required services per requirement.
    pub services: usize,
    /// Instances placed per service.
    pub instances_per_service: usize,
    /// Base seed; every (size, trial) derives its own stream from it.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    /// The paper's sweep: networks of 10–50 nodes.
    fn default() -> Self {
        SweepConfig {
            sizes: vec![10, 20, 30, 40, 50],
            trials: 30,
            services: 6,
            instances_per_service: 3,
            base_seed: 2004, // ICDCS 2004
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for unit tests and smoke runs.
    pub fn smoke() -> Self {
        SweepConfig {
            sizes: vec![10, 20],
            trials: 4,
            services: 5,
            instances_per_service: 2,
            base_seed: 7,
        }
    }
}

/// Mean of a slice, `0.0` when empty.
pub(crate) fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sweep() {
        let c = SweepConfig::default();
        assert_eq!(c.sizes, vec![10, 20, 30, 40, 50]);
        assert!(c.trials >= 10);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
