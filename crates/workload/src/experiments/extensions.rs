//! Extension experiments beyond the paper's Fig. 10:
//!
//! * **E-CP control plane** — the cost of the link-state dissemination the
//!   paper assumes ("based on link states"): flooding messages and
//!   convergence time vs network size;
//! * **E-AG agility** — the title's *agile* claim quantified: after killing
//!   the selected instances of `k` services, how much of the federation does
//!   pin-preserving [`sflow_core::repair`] move, versus a full
//!   re-federation?

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow_core::repair::repair;
use sflow_core::FederationContext;
use sflow_net::ServiceInstance;
use sflow_sim::linkstate::flood_link_state;

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, mixed_kind};
use crate::table::{f1, f3, Table};

/// One row of the control-plane series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControlPlaneRow {
    /// Network size (hosts).
    pub size: usize,
    /// Mean LSA transmissions until quiescence.
    pub messages: f64,
    /// Mean duplicate receptions (suppressed).
    pub duplicates: f64,
    /// Mean simulated convergence time (µs).
    pub converged_us: f64,
}

/// Runs the control-plane experiment.
pub fn run_control_plane(cfg: &SweepConfig) -> Vec<ControlPlaneRow> {
    let mut rows = Vec::new();
    for &size in &cfg.sizes {
        let mut msgs = Vec::new();
        let mut dups = Vec::new();
        let mut conv = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let out = flood_link_state(&t.fixture.net);
            assert!(out.all_converged(&t.fixture.net));
            msgs.push(out.stats.messages as f64);
            dups.push(out.stats.duplicates as f64);
            conv.push(out.stats.converged_at_us as f64);
        }
        rows.push(ControlPlaneRow {
            size,
            messages: mean(&msgs),
            duplicates: mean(&dups),
            converged_us: mean(&conv),
        });
    }
    rows
}

/// Renders the control-plane series.
pub fn control_plane_table(rows: &[ControlPlaneRow]) -> Table {
    let mut t = Table::new(
        "E-CP — link-state flooding cost vs network size",
        &["size", "messages", "duplicates", "converged µs"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.messages),
            f1(r.duplicates),
            f1(r.converged_us),
        ]);
    }
    t
}

/// One row of the agility series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AgilityRow {
    /// How many services' selected instances were killed simultaneously.
    pub failures: usize,
    /// Fraction of trials where repair (including its fallback) succeeded.
    pub success: f64,
    /// Mean fraction of services whose instance moved, with pin-preserving
    /// repair.
    pub moved_repair: f64,
    /// Mean fraction of services whose instance moved, re-federating from
    /// scratch.
    pub moved_refederate: f64,
    /// Mean bandwidth of the repaired flow relative to the fresh one.
    pub bandwidth_ratio: f64,
}

/// Runs the agility experiment at the largest configured network size.
pub fn run_agility(cfg: &SweepConfig) -> Vec<AgilityRow> {
    let size = *cfg.sizes.last().expect("non-empty sizes");
    let mut rows = Vec::new();
    for failures in 1..=3usize {
        let mut success = Vec::new();
        let mut moved_repair = Vec::new();
        let mut moved_fresh = Vec::new();
        let mut bw_ratio = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed ^ 0xA61,
                trial,
            );
            let ctx = t.fixture.context();
            let Ok(flow) = SflowAlgorithm::default().federate(&ctx, &t.requirement) else {
                continue;
            };
            // Kill the selected instances of the last `failures` non-source
            // services (deterministic choice).
            let victims: Vec<ServiceInstance> = t
                .requirement
                .topo_order()
                .into_iter()
                .rev()
                .filter(|&s| s != t.requirement.source())
                .take(failures)
                .map(|s| flow.instances()[&s])
                .collect();
            let degraded = t.fixture.overlay.without_instances(&victims);
            let ap = degraded.all_pairs();
            let Some(source) = degraded.node_of(t.fixture.overlay.instance(t.fixture.source))
            else {
                continue;
            };
            let ctx2 = FederationContext::new(&degraded, &ap, source);
            match repair(&ctx2, &t.requirement, &flow) {
                Ok(outcome) => {
                    success.push(1.0);
                    let total = t.requirement.len() as f64;
                    moved_repair.push(outcome.reselected.len() as f64 / total);
                    // Full re-federation baseline: solve fresh, count moves
                    // vs the original flow.
                    if let Ok(fresh) = SflowAlgorithm::default().federate(&ctx2, &t.requirement) {
                        let moved = fresh
                            .instances()
                            .iter()
                            .filter(|(sid, inst)| flow.instances().get(sid) != Some(inst))
                            .count();
                        moved_fresh.push(moved as f64 / total);
                        let fb = fresh.bandwidth().as_kbps().max(1) as f64;
                        bw_ratio.push(outcome.flow.bandwidth().as_kbps() as f64 / fb);
                    }
                }
                Err(_) => success.push(0.0),
            }
        }
        rows.push(AgilityRow {
            failures,
            success: mean(&success),
            moved_repair: mean(&moved_repair),
            moved_refederate: mean(&moved_fresh),
            bandwidth_ratio: mean(&bw_ratio),
        });
    }
    rows
}

/// Renders the agility series.
pub fn agility_table(rows: &[AgilityRow]) -> Table {
    let mut t = Table::new(
        "E-AG — repair disruption vs simultaneous failures",
        &[
            "failures",
            "success",
            "moved (repair)",
            "moved (refederate)",
            "bw ratio",
        ],
    );
    for r in rows {
        t.row(vec![
            r.failures.to_string(),
            f3(r.success),
            f3(r.moved_repair),
            f3(r.moved_refederate),
            f3(r.bandwidth_ratio),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_plane_flooding_scales_and_converges() {
        let rows = run_control_plane(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        assert!(rows[1].messages > rows[0].messages, "more hosts, more LSAs");
        for r in &rows {
            assert!(r.converged_us > 0.0);
        }
    }

    #[test]
    fn repair_moves_less_than_refederation() {
        let rows = run_agility(&SweepConfig::smoke());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.success > 0.0);
            // Pin-preserving repair never moves more than a fresh solve
            // moves relative to the old flow (on average).
            assert!(
                r.moved_repair <= r.moved_refederate + 1e-9,
                "repair {} > refederate {}",
                r.moved_repair,
                r.moved_refederate
            );
            // Moving k services means at least k/|services| moved.
            assert!(r.moved_repair > 0.0);
        }
    }
}
