//! Fig. 10(c): end-to-end latency vs network size.
//!
//! sFlow exploits parallel service streams, so its end-to-end latency is the
//! slowest *branch*; the single service path algorithm must execute all
//! services sequentially ("fails to consider the parallel processing
//! cases"), so its figure is the full sequential chain latency.

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{
    sequential_latency, FederationAlgorithm, FixedAlgorithm, RandomAlgorithm, ServicePathAlgorithm,
    SflowAlgorithm,
};

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, mixed_kind};
use crate::table::{f1, Table};

/// One row of the Fig. 10(c) series: mean end-to-end latency (µs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Network size (hosts).
    pub size: usize,
    /// sFlow (parallel branches).
    pub sflow_us: f64,
    /// Greedy fixed algorithm.
    pub fixed_us: f64,
    /// Random algorithm.
    pub random_us: f64,
    /// Sequential (service-path style) execution: the single service path
    /// algorithm's chain latency where it can compose, otherwise the
    /// serialized execution of the composed flow — either way, no stream
    /// parallelism ("fails to consider the parallel processing cases").
    pub service_path_us: f64,
}

/// Runs the latency sweep on mixed requirements.
pub fn run(cfg: &SweepConfig) -> Vec<LatencyRow> {
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let sflow_flow = SflowAlgorithm::default()
                .federate(&ctx, &t.requirement)
                .ok();
            if let Some(flow) = &sflow_flow {
                acc[0].push(flow.latency().as_micros() as f64);
            }
            if let Ok(flow) = FixedAlgorithm.federate(&ctx, &t.requirement) {
                acc[1].push(flow.latency().as_micros() as f64);
            }
            if let Ok(flow) = RandomAlgorithm::with_seed(cfg.base_seed ^ trial as u64)
                .federate(&ctx, &t.requirement)
            {
                acc[2].push(flow.latency().as_micros() as f64);
            }
            // Sequential baseline: the path algorithm's chain where it can
            // compose; otherwise serialize the sFlow composition (sum of all
            // stream latencies — no parallel branches).
            let sequential = ServicePathAlgorithm
                .federate(&ctx, &t.requirement)
                .ok()
                .and_then(|flow| sequential_latency(&ctx, &t.requirement, &flow))
                .map(|l| l.as_micros() as f64)
                .or_else(|| {
                    sflow_flow.as_ref().map(|flow| {
                        flow.edges()
                            .iter()
                            .map(|e| e.qos.latency.as_micros() as f64)
                            .sum()
                    })
                });
            if let Some(seq) = sequential {
                acc[3].push(seq);
            }
        }
        rows.push(LatencyRow {
            size,
            sflow_us: mean(&acc[0]),
            fixed_us: mean(&acc[1]),
            random_us: mean(&acc[2]),
            service_path_us: mean(&acc[3]),
        });
    }
    rows
}

/// Renders the series as a table.
pub fn to_table(rows: &[LatencyRow]) -> Table {
    let mut t = Table::new(
        "Fig. 10(c) — end-to-end latency vs network size (µs)",
        &["size", "sflow", "fixed", "random", "service-path"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.sflow_us),
            f1(r.fixed_us),
            f1(r.random_us),
            f1(r.service_path_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shows_sflow_advantage() {
        let rows = run(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.sflow_us > 0.0);
            // Headline claims of Fig. 10(c).
            assert!(
                r.sflow_us <= r.random_us,
                "sflow {} > random {}",
                r.sflow_us,
                r.random_us
            );
            assert!(
                r.sflow_us <= r.service_path_us,
                "sflow {} > service-path {}",
                r.sflow_us,
                r.service_path_us
            );
        }
    }
}
