//! Fig. 10(a): correctness coefficient vs network size.
//!
//! For every trial, each algorithm's flow graph is compared against the
//! global optimum: the coefficient is the fraction of required services for
//! which the algorithm selected the same instance as the optimum. Failures
//! score zero.

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, RandomAlgorithm,
    ServicePathAlgorithm, SflowAlgorithm,
};
use sflow_core::metrics::correctness_coefficient;

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, mixed_kind};
use crate::table::{f3, Table};

/// One row of the Fig. 10(a) series: mean correctness per algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorrectnessRow {
    /// Network size (hosts).
    pub size: usize,
    /// sFlow (2-hop views).
    pub sflow: f64,
    /// Greedy fixed algorithm.
    pub fixed: f64,
    /// Random algorithm.
    pub random: f64,
    /// Single service path algorithm (Gu et al.).
    pub service_path: f64,
}

/// Runs the correctness sweep.
pub fn run(cfg: &SweepConfig) -> Vec<CorrectnessRow> {
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let Ok(opt) = GlobalOptimalAlgorithm.federate(&ctx, &t.requirement) else {
                continue; // degenerate world; skip the trial entirely
            };
            let algos: [&dyn FederationAlgorithm; 4] = [
                &SflowAlgorithm::default(),
                &FixedAlgorithm,
                &RandomAlgorithm::with_seed(cfg.base_seed ^ trial as u64),
                &ServicePathAlgorithm,
            ];
            for (i, alg) in algos.iter().enumerate() {
                let score = match alg.federate(&ctx, &t.requirement) {
                    Ok(flow) => correctness_coefficient(&flow, &opt),
                    Err(_) => 0.0,
                };
                acc[i].push(score);
            }
        }
        rows.push(CorrectnessRow {
            size,
            sflow: mean(&acc[0]),
            fixed: mean(&acc[1]),
            random: mean(&acc[2]),
            service_path: mean(&acc[3]),
        });
    }
    rows
}

/// Renders the series as a table (matches the paper's Fig. 10(a) legend).
pub fn to_table(rows: &[CorrectnessRow]) -> Table {
    let mut t = Table::new(
        "Fig. 10(a) — correctness coefficient vs network size",
        &["size", "sflow", "fixed", "random", "service-path"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f3(r.sflow),
            f3(r.fixed),
            f3(r.random),
            f3(r.service_path),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_has_expected_ordering() {
        let rows = run(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.sflow));
            // The headline claim of Fig. 10(a): sFlow dominates the controls.
            assert!(
                r.sflow >= r.random,
                "sflow {} < random {}",
                r.sflow,
                r.random
            );
            assert!(r.sflow >= r.service_path);
            // And stays close to optimal.
            assert!(r.sflow >= 0.7, "sflow correctness too low: {}", r.sflow);
        }
        let table = to_table(&rows);
        assert_eq!(table.len(), 2);
    }
}
