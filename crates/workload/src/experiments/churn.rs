//! E-CH: federation under QoS churn — the agility experiment over time.
//!
//! Link QoS drifts every epoch ([`sflow_sim::dynamics::ChurnModel`]). Three
//! policies are compared over an episode of epochs:
//!
//! * **static** — federate once, never touch the selection again; its
//!   quality is re-evaluated against the drifted network each epoch;
//! * **agile** — re-run sFlow from scratch every epoch;
//! * **oracle** — the global optimum recomputed every epoch (the upper
//!   envelope).
//!
//! The metric is each policy's mean bandwidth relative to the oracle, plus
//! the fraction of services the agile policy reselects per epoch (its
//! disruption cost).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{FederationAlgorithm, GlobalOptimalAlgorithm, SflowAlgorithm};
use sflow_core::fixtures::Fixture;
use sflow_core::{FederationContext, FlowGraph};
use sflow_net::OverlayGraph;
use sflow_sim::dynamics::{extract_placement_and_compat, ChurnModel};

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, mixed_kind};
use crate::table::{f3, Table};

/// Number of churn epochs per trial.
pub const EPOCHS: usize = 8;

/// One row of the churn series.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Drift magnitude per epoch (± fraction).
    pub drift: f64,
    /// Static federation's mean bandwidth, relative to the per-epoch oracle.
    pub static_ratio: f64,
    /// Agile (re-federating) policy's mean bandwidth relative to the oracle.
    pub agile_ratio: f64,
    /// Mean fraction of services the agile policy moved per epoch.
    pub agile_disruption: f64,
    /// Fraction of epochs where the static selection remained *feasible*
    /// (all of its streams still connected).
    pub static_feasible: f64,
}

/// Runs the churn experiment at the largest configured size.
pub fn run(cfg: &SweepConfig) -> Vec<ChurnRow> {
    let size = *cfg.sizes.last().expect("non-empty sizes");
    let mut rows = Vec::new();
    for drift in [0.1f64, 0.3, 0.5] {
        let churn = ChurnModel { drift };
        let mut static_ratio = Vec::new();
        let mut agile_ratio = Vec::new();
        let mut disruption = Vec::new();
        let mut static_ok = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed ^ 0xC4A9,
                trial,
            );
            let ctx = t.fixture.context();
            let Ok(initial) = SflowAlgorithm::default().federate(&ctx, &t.requirement) else {
                continue;
            };
            let (placement, compat) = extract_placement_and_compat(&t.fixture.overlay);
            let mut rng = StdRng::seed_from_u64(cfg.base_seed ^ (trial as u64) << 8 ^ 0xC4A9);
            let mut net = t.fixture.net.clone();
            let mut previous_agile = initial.clone();
            for _epoch in 0..EPOCHS {
                net = churn.evolve(&net, &mut rng);
                let Ok(overlay) = OverlayGraph::build(&net, &placement, &compat) else {
                    continue;
                };
                let source_inst = t.fixture.overlay.instance(t.fixture.source);
                let fx = Fixture::new(net.clone(), overlay, source_inst.service);
                let ctx = FederationContext::new(
                    &fx.overlay,
                    &fx.all_pairs,
                    fx.overlay.node_of(source_inst).expect("hosts persist"),
                );
                let Ok(oracle) = GlobalOptimalAlgorithm.federate(&ctx, &t.requirement) else {
                    continue;
                };
                let oracle_bw = oracle.bandwidth().as_kbps().max(1) as f64;

                // Static: translate the initial instances into this epoch's
                // overlay and re-evaluate.
                match reassemble(&ctx, &t.requirement, &initial, &fx.overlay) {
                    Some(static_flow) => {
                        static_ok.push(1.0);
                        static_ratio.push(static_flow.bandwidth().as_kbps() as f64 / oracle_bw);
                    }
                    None => static_ok.push(0.0),
                }

                // Agile: fresh sFlow each epoch; disruption vs its last run.
                if let Ok(agile) = SflowAlgorithm::default().federate(&ctx, &t.requirement) {
                    agile_ratio.push(agile.bandwidth().as_kbps() as f64 / oracle_bw);
                    let moved = agile
                        .instances()
                        .iter()
                        .filter(|(sid, inst)| previous_agile.instances().get(sid) != Some(inst))
                        .count();
                    disruption.push(moved as f64 / t.requirement.len() as f64);
                    previous_agile = agile;
                }
            }
        }
        rows.push(ChurnRow {
            drift,
            static_ratio: mean(&static_ratio),
            agile_ratio: mean(&agile_ratio),
            agile_disruption: mean(&disruption),
            static_feasible: mean(&static_ok),
        });
    }
    rows
}

/// Re-binds a flow graph's `(service, host)` selections into a new overlay
/// and re-assembles; `None` when an instance vanished or a stream broke.
fn reassemble(
    ctx: &FederationContext<'_>,
    req: &sflow_core::ServiceRequirement,
    old: &FlowGraph,
    overlay: &OverlayGraph,
) -> Option<FlowGraph> {
    let mut selection = std::collections::BTreeMap::new();
    for (&sid, &inst) in old.instances() {
        selection.insert(sid, overlay.node_of(inst)?);
    }
    FlowGraph::assemble(ctx, req, &selection).ok()
}

/// Renders the churn series.
pub fn to_table(rows: &[ChurnRow]) -> Table {
    let mut t = Table::new(
        "E-CH — federation under QoS churn (bandwidth relative to per-epoch oracle)",
        &["drift", "static", "agile", "disruption", "static feasible"],
    );
    for r in rows {
        t.row(vec![
            format!("±{:.0}%", r.drift * 100.0),
            f3(r.static_ratio),
            f3(r.agile_ratio),
            f3(r.agile_disruption),
            f3(r.static_feasible),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agile_beats_static_under_churn() {
        let rows = run(&SweepConfig::smoke());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.agile_ratio > 0.0);
            // Re-federating tracks the drifting optimum at least as well as
            // freezing the day-one selection.
            assert!(
                r.agile_ratio >= r.static_ratio - 1e-9,
                "drift {}: agile {} < static {}",
                r.drift,
                r.agile_ratio,
                r.static_ratio
            );
            assert!((0.0..=1.0).contains(&r.agile_disruption));
        }
    }
}
