//! Fig. 10(d): end-to-end (bottleneck) bandwidth vs network size.

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, RandomAlgorithm, SflowAlgorithm,
};

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, mixed_kind};
use crate::table::{f1, Table};

/// One row of the Fig. 10(d) series: mean bottleneck bandwidth (kbit/s).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BandwidthRow {
    /// Network size (hosts).
    pub size: usize,
    /// Global optimum (upper envelope of the plot).
    pub global_optimal_kbps: f64,
    /// sFlow.
    pub sflow_kbps: f64,
    /// Greedy fixed algorithm.
    pub fixed_kbps: f64,
    /// Random algorithm.
    pub random_kbps: f64,
}

/// Runs the bandwidth sweep on mixed requirements. Failures score zero
/// bandwidth (a federation that cannot be built delivers nothing).
pub fn run(cfg: &SweepConfig) -> Vec<BandwidthRow> {
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut acc = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                mixed_kind(trial),
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let algos: [&dyn FederationAlgorithm; 4] = [
                &GlobalOptimalAlgorithm,
                &SflowAlgorithm::default(),
                &FixedAlgorithm,
                &RandomAlgorithm::with_seed(cfg.base_seed ^ trial as u64),
            ];
            for (i, alg) in algos.iter().enumerate() {
                let bw = alg
                    .federate(&ctx, &t.requirement)
                    .map(|f| f.bandwidth().as_kbps() as f64)
                    .unwrap_or(0.0);
                acc[i].push(bw);
            }
        }
        rows.push(BandwidthRow {
            size,
            global_optimal_kbps: mean(&acc[0]),
            sflow_kbps: mean(&acc[1]),
            fixed_kbps: mean(&acc[2]),
            random_kbps: mean(&acc[3]),
        });
    }
    rows
}

/// Renders the series as a table.
pub fn to_table(rows: &[BandwidthRow]) -> Table {
    let mut t = Table::new(
        "Fig. 10(d) — end-to-end bandwidth vs network size (kbit/s)",
        &["size", "global-optimal", "sflow", "fixed", "random"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.global_optimal_kbps),
            f1(r.sflow_kbps),
            f1(r.fixed_kbps),
            f1(r.random_kbps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shows_expected_ordering() {
        let rows = run(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // Fig. 10(d) ordering: optimal ≥ sflow ≥ {fixed, random}.
            assert!(r.global_optimal_kbps >= r.sflow_kbps);
            assert!(r.sflow_kbps >= r.random_kbps);
            assert!(r.sflow_kbps > 0.0);
        }
        assert_eq!(to_table(&rows).len(), 2);
    }
}
