//! Fig. 10(b): computation time vs network size.
//!
//! As in the paper, "we use only simple requirements in order to make
//! reasonable comparison between the sFlow algorithm and the global optimal
//! algorithm" — on path requirements the optimum is polynomial, so the two
//! curves measure comparable work. The sFlow curve sits slightly above the
//! global-optimal one because of per-hop re-computation (hop-limited local
//! solves at every node), which is exactly the gap the paper describes.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use sflow_core::algorithms::{FederationAlgorithm, GlobalOptimalAlgorithm, SflowAlgorithm};
use sflow_core::FederationContext;
use sflow_sim::{run_distributed, SimConfig};

use crate::experiments::{mean, SweepConfig};
use crate::generator::{build_trial, RequirementKind};
use crate::table::{f1, Table};

/// One row of the Fig. 10(b) series: mean wall-clock computation time (µs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingRow {
    /// Network size (hosts).
    pub size: usize,
    /// Distributed sFlow: the sum of local computations across all nodes
    /// (measured by running the full protocol).
    pub sflow_us: f64,
    /// Global optimal computed once (at the sink, in the paper's setup).
    pub global_optimal_us: f64,
}

/// Runs the timing sweep on path requirements.
pub fn run(cfg: &SweepConfig) -> Vec<TimingRow> {
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut sflow_t = Vec::new();
        let mut opt_t = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                RequirementKind::Path,
                cfg.base_seed,
                trial,
            );
            // The timed region includes the all-pairs shortest-widest table
            // over all N network nodes (step 1 of Table 1 — in the paper's
            // setup every node is a service node, so this is the O(N³) term
            // that makes computation time grow with network size in
            // Fig. 10(b)).
            let start = Instant::now();
            {
                let _link_state = t.fixture.net.all_pairs();
                let ap = t.fixture.overlay.all_pairs();
                let ctx = FederationContext::new(&t.fixture.overlay, &ap, t.fixture.source);
                if run_distributed(&ctx, &t.requirement, &SimConfig::default()).is_ok() {
                    sflow_t.push(start.elapsed().as_micros() as f64);
                }
            }

            let start = Instant::now();
            {
                let _link_state = t.fixture.net.all_pairs();
                let ap = t.fixture.overlay.all_pairs();
                let ctx = FederationContext::new(&t.fixture.overlay, &ap, t.fixture.source);
                if GlobalOptimalAlgorithm
                    .federate(&ctx, &t.requirement)
                    .is_ok()
                {
                    opt_t.push(start.elapsed().as_micros() as f64);
                }
            }
        }
        rows.push(TimingRow {
            size,
            sflow_us: mean(&sflow_t),
            global_optimal_us: mean(&opt_t),
        });
    }
    rows
}

/// Centralized-sFlow timing variant, used by the Criterion bench to isolate
/// the algorithm from protocol bookkeeping. Returns mean µs per size.
pub fn run_centralized(cfg: &SweepConfig) -> Vec<TimingRow> {
    let mut rows = Vec::with_capacity(cfg.sizes.len());
    for &size in &cfg.sizes {
        let mut sflow_t = Vec::new();
        let mut opt_t = Vec::new();
        for trial in 0..cfg.trials {
            let t = build_trial(
                size,
                cfg.services,
                cfg.instances_per_service,
                RequirementKind::Path,
                cfg.base_seed,
                trial,
            );
            let ctx = t.fixture.context();
            let alg = SflowAlgorithm::default();
            let start = Instant::now();
            if alg.federate(&ctx, &t.requirement).is_ok() {
                sflow_t.push(start.elapsed().as_micros() as f64);
            }
            let start = Instant::now();
            if GlobalOptimalAlgorithm
                .federate(&ctx, &t.requirement)
                .is_ok()
            {
                opt_t.push(start.elapsed().as_micros() as f64);
            }
        }
        rows.push(TimingRow {
            size,
            sflow_us: mean(&sflow_t),
            global_optimal_us: mean(&opt_t),
        });
    }
    rows
}

/// Renders the series as a table.
pub fn to_table(rows: &[TimingRow]) -> Table {
    let mut t = Table::new(
        "Fig. 10(b) — computation time vs network size (µs, wall clock)",
        &["size", "sflow", "global-optimal"],
    );
    for r in rows {
        t.row(vec![
            r.size.to_string(),
            f1(r.sflow_us),
            f1(r.global_optimal_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_measures_positive_times() {
        let rows = run(&SweepConfig::smoke());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.sflow_us > 0.0);
            assert!(r.global_optimal_us > 0.0);
        }
        assert_eq!(to_table(&rows).len(), 2);
    }
}
