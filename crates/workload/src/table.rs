//! Plain-text table and CSV rendering for experiment results.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }

    /// Renders the table as CSV (headers first; no quoting — experiment
    /// cells are numeric or simple identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with 3 decimal places (experiment convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(vec!["10".into(), "0.5".into()]);
        t.row(vec!["100".into(), "0.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("  n  value"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        Table::new("t", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(0.123456), "0.123");
        assert_eq!(f1(12.34), "12.3");
    }
}
