//! Regenerates the paper's evaluation figures (Fig. 10(a)–(d)), the design
//! ablations and the extension experiments as plain-text tables plus
//! CSV/JSON files.
//!
//! Usage:
//!
//! ```text
//! fig10 [a|b|c|d|ablations|extensions|all]
//!       [--trials N] [--sizes 10,20,30,40,50] [--seed S] [--out DIR]
//! ```

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sflow_workload::experiments::{
    ablations, bandwidth, churn, correctness, extensions, latency, timing, SweepConfig,
};
use sflow_workload::table::Table;

struct Args {
    which: String,
    cfg: SweepConfig,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut which = "all".to_string();
    let mut cfg = SweepConfig::default();
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "a" | "b" | "c" | "d" | "ablations" | "extensions" | "all" => which = a,
            "--trials" => {
                let v = argv.next().ok_or("--trials needs a value")?;
                cfg.trials = v.parse().map_err(|_| format!("bad trial count {v}"))?;
            }
            "--sizes" => {
                let v = argv.next().ok_or("--sizes needs a value")?;
                cfg.sizes = v
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("bad size {s}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                let v = argv.next().ok_or("--seed needs a value")?;
                cfg.base_seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args { which, cfg, out })
}

fn emit<T: serde::Serialize>(table: &Table, rows: &[T], name: &str, out: &Option<PathBuf>) {
    println!("{}", table.render());
    if let Some(dir) = out {
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, table.to_csv()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(rows).expect("rows serialize");
        match fs::write(&path, json) {
            Ok(()) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig10: {e}");
            eprintln!(
                "usage: fig10 [a|b|c|d|ablations|extensions|all] [--trials N] [--sizes 10,20,...] [--seed S] [--out DIR]"
            );
            return ExitCode::FAILURE;
        }
    };
    let cfg = &args.cfg;
    println!(
        "sweep: sizes {:?}, {} trials/size, {} services × {} instances, seed {}\n",
        cfg.sizes, cfg.trials, cfg.services, cfg.instances_per_service, cfg.base_seed
    );
    if matches!(args.which.as_str(), "a" | "all") {
        let rows = correctness::run(cfg);
        emit(
            &correctness::to_table(&rows),
            &rows,
            "fig10a_correctness",
            &args.out,
        );
    }
    if matches!(args.which.as_str(), "b" | "all") {
        let rows = timing::run(cfg);
        emit(&timing::to_table(&rows), &rows, "fig10b_time", &args.out);
    }
    if matches!(args.which.as_str(), "c" | "all") {
        let rows = latency::run(cfg);
        emit(
            &latency::to_table(&rows),
            &rows,
            "fig10c_latency",
            &args.out,
        );
    }
    if matches!(args.which.as_str(), "d" | "all") {
        let rows = bandwidth::run(cfg);
        emit(
            &bandwidth::to_table(&rows),
            &rows,
            "fig10d_bandwidth",
            &args.out,
        );
    }
    if matches!(args.which.as_str(), "extensions" | "all") {
        let rows = extensions::run_control_plane(cfg);
        emit(
            &extensions::control_plane_table(&rows),
            &rows,
            "ext_control_plane",
            &args.out,
        );
        let rows = extensions::run_agility(cfg);
        emit(
            &extensions::agility_table(&rows),
            &rows,
            "ext_agility",
            &args.out,
        );
        let rows = churn::run(cfg);
        emit(&churn::to_table(&rows), &rows, "ext_churn", &args.out);
    }
    if matches!(args.which.as_str(), "ablations" | "all") {
        let rows = ablations::run_horizon(cfg);
        emit(
            &ablations::horizon_table(&rows),
            &rows,
            "ablation_horizon",
            &args.out,
        );
        let rows = ablations::run_routing_policy(cfg);
        emit(
            &ablations::routing_policy_table(&rows),
            &rows,
            "ablation_routing",
            &args.out,
        );
        let rows = ablations::run_reductions(cfg);
        emit(
            &ablations::reductions_table(&rows),
            &rows,
            "ablation_reductions",
            &args.out,
        );
        let rows = ablations::run_view_model(cfg);
        emit(
            &ablations::view_model_table(&rows),
            &rows,
            "ablation_view_model",
            &args.out,
        );
        let rows = ablations::run_topology(cfg);
        emit(
            &ablations::topology_table(&rows),
            &rows,
            "ablation_topology",
            &args.out,
        );
    }
    ExitCode::SUCCESS
}
