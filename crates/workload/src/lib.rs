//! Workload generators and experiment runners reproducing the paper's
//! evaluation (Sec. 5, Fig. 10) plus the ablations listed in `DESIGN.md`.
//!
//! * [`generator`] — seeded random service requirements (paths, disjoint
//!   bundles, trees, general DAGs) and experiment worlds;
//! * [`experiments`] — one runner per figure: correctness (10a), computation
//!   time (10b), latency (10c), bandwidth (10d), plus the horizon, routing-
//!   policy and reduction ablations;
//! * [`table`] — plain-text table + CSV rendering for the `fig10` binary.
//!
//! Regenerate every figure with:
//!
//! ```text
//! cargo run --release -p sflow-workload --bin fig10 -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod generator;
pub mod table;
