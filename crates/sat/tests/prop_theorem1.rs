//! Property tests for Theorem 1: over random CNF formulas, satisfiability
//! (decided by DPLL, cross-checked by truth tables) coincides with the
//! feasibility of the reduced Maximum Service Flow Graph instance.

use proptest::prelude::*;
use sflow_sat::cnf::{Assignment, Cnf, Lit, Var};
use sflow_sat::{dpll, msfg, reduction};

fn cnf_strategy() -> impl Strategy<Value = Cnf> {
    // Up to 4 variables and 5 clauses of 1–3 literals: small enough to
    // truth-table, varied enough to cover both SAT and UNSAT instances.
    (1u32..=4).prop_flat_map(|nvars| {
        let lit = (0..nvars, any::<bool>()).prop_map(|(v, pos)| {
            if pos {
                Lit::pos(Var::new(v))
            } else {
                Lit::neg(Var::new(v))
            }
        });
        let clause = proptest::collection::vec(lit, 1..=3);
        proptest::collection::vec(clause, 1..=5).prop_map(move |clauses| {
            let mut f = Cnf::new(nvars);
            for c in clauses {
                f.add_clause(c);
            }
            f
        })
    })
}

fn truth_table_sat(f: &Cnf) -> bool {
    let n = f.num_vars();
    (0..(1u32 << n)).any(|bits| {
        let a = Assignment::new((0..n).map(|i| bits & (1 << i) != 0).collect());
        f.is_satisfied_by(&a)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dpll_agrees_with_truth_tables(f in cnf_strategy()) {
        let dpll_result = dpll::solve(&f);
        prop_assert_eq!(dpll_result.is_some(), truth_table_sat(&f));
        if let Some(a) = dpll_result {
            prop_assert!(f.is_satisfied_by(&a));
        }
    }

    #[test]
    fn theorem1_equivalence(f in cnf_strategy()) {
        let sat = dpll::solve(&f).is_some();
        let inst = reduction::sat_to_msfg(&f);
        prop_assert_eq!(
            msfg::is_feasible(&inst),
            sat,
            "feasibility must coincide with satisfiability for {}", f
        );
    }

    #[test]
    fn certificates_map_forward(f in cnf_strategy()) {
        // Every feasible selection yields a satisfying assignment.
        let inst = reduction::sat_to_msfg(&f);
        if let Some(sol) = msfg::max_bottleneck(&inst) {
            if sol.bottleneck >= inst.k {
                let a = reduction::selection_to_assignment(&f, &sol.selection)
                    .expect("feasible selection avoids complements");
                prop_assert!(f.is_satisfied_by(&a));
            }
        }
    }

    #[test]
    fn certificates_map_backward(f in cnf_strategy()) {
        // Every satisfying assignment yields a feasible selection.
        if let Some(a) = dpll::solve(&f) {
            let sel = reduction::assignment_to_selection(&f, &a)
                .expect("satisfying assignment hits every clause");
            let inst = reduction::sat_to_msfg(&f);
            let b = msfg::selection_bottleneck(&inst, &sel)
                .expect("full cross-group connectivity");
            prop_assert!(b >= inst.k);
        }
    }

    #[test]
    fn dimacs_round_trips_any_formula(f in cnf_strategy()) {
        use sflow_sat::dimacs;
        let rendered = dimacs::render(&f);
        let parsed = dimacs::parse(&rendered).expect("render produces valid DIMACS");
        prop_assert_eq!(&f, &parsed);
        // Satisfiability is invariant under the round trip, trivially.
        prop_assert_eq!(dpll::solve(&f).is_some(), dpll::solve(&parsed).is_some());
    }

    #[test]
    fn reduction_is_polynomially_sized(f in cnf_strategy()) {
        let inst = reduction::sat_to_msfg(&f);
        let total_lits: usize = f.clauses().iter().map(Vec::len).sum();
        prop_assert_eq!(inst.graph.node_count(), total_lits);
        prop_assert!(inst.graph.edge_count() <= total_lits * total_lits);
        prop_assert_eq!(inst.groups.len(), f.clauses().len());
    }
}
