//! A DPLL SAT solver with unit propagation and pure-literal elimination.
//!
//! Exponential worst case, of course — this is the *oracle* side of the
//! NP-completeness equivalence tests, run on small formulas.

use crate::cnf::{Assignment, Cnf, Lit, Var};

/// Decides satisfiability; returns a satisfying total assignment if one
/// exists (unassigned variables default to `false`).
pub fn solve(cnf: &Cnf) -> Option<Assignment> {
    let mut values: Vec<Option<bool>> = vec![None; cnf.num_vars() as usize];
    if search(cnf, &mut values) {
        Some(Assignment::new(
            values.into_iter().map(|v| v.unwrap_or(false)).collect(),
        ))
    } else {
        None
    }
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(Lit),
    Open,
}

fn clause_state(clause: &[Lit], values: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &l in clause {
        match values[l.var().index()] {
            Some(v) if l.eval(v) => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one")),
        _ => ClauseState::Open,
    }
}

/// Applies unit propagation and pure-literal elimination to a fixpoint.
/// Returns `false` on conflict.
fn propagate(cnf: &Cnf, values: &mut [Option<bool>]) -> bool {
    loop {
        let mut changed = false;
        // Unit propagation.
        for clause in cnf.clauses() {
            match clause_state(clause, values) {
                ClauseState::Conflict => return false,
                ClauseState::Unit(l) => {
                    values[l.var().index()] = Some(l.is_positive());
                    changed = true;
                }
                _ => {}
            }
        }
        if changed {
            continue;
        }
        // Pure literals: a variable appearing with only one polarity among
        // unsatisfied clauses can be fixed to that polarity.
        let n = values.len();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in cnf.clauses() {
            if matches!(clause_state(clause, values), ClauseState::Satisfied) {
                continue;
            }
            for &l in clause {
                if values[l.var().index()].is_none() {
                    if l.is_positive() {
                        pos[l.var().index()] = true;
                    } else {
                        neg[l.var().index()] = true;
                    }
                }
            }
        }
        for i in 0..n {
            if values[i].is_none() && (pos[i] ^ neg[i]) {
                values[i] = Some(pos[i]);
                changed = true;
            }
        }
        if !changed {
            return true;
        }
    }
}

fn search(cnf: &Cnf, values: &mut Vec<Option<bool>>) -> bool {
    let snapshot = values.clone();
    if !propagate(cnf, values) {
        *values = snapshot;
        return false;
    }
    // All clauses satisfied?
    if cnf
        .clauses()
        .iter()
        .all(|c| matches!(clause_state(c, values), ClauseState::Satisfied))
    {
        return true;
    }
    let Some(branch_var) = values
        .iter()
        .position(|v| v.is_none())
        .map(|i| Var::new(i as u32))
    else {
        // Fully assigned but not all satisfied: conflict.
        *values = snapshot;
        return false;
    };
    for candidate in [true, false] {
        let restore = values.clone();
        values[branch_var.index()] = Some(candidate);
        if search(cnf, values) {
            return true;
        }
        *values = restore;
    }
    *values = snapshot;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Lit, Var};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn satisfiable_formula() {
        let mut f = Cnf::new(3);
        f.add_clause([Lit::pos(v(0)), Lit::pos(v(1))]);
        f.add_clause([Lit::neg(v(0)), Lit::pos(v(2))]);
        f.add_clause([Lit::neg(v(1)), Lit::neg(v(2))]);
        let a = solve(&f).expect("satisfiable");
        assert!(f.is_satisfied_by(&a));
    }

    #[test]
    fn unsatisfiable_formula() {
        // (x) ∧ (¬x)
        let mut f = Cnf::new(1);
        f.add_clause([Lit::pos(v(0))]);
        f.add_clause([Lit::neg(v(0))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn classic_unsat_core() {
        // (x ∨ y) ∧ (x ∨ ¬y) ∧ (¬x ∨ y) ∧ (¬x ∨ ¬y)
        let mut f = Cnf::new(2);
        f.add_clause([Lit::pos(v(0)), Lit::pos(v(1))]);
        f.add_clause([Lit::pos(v(0)), Lit::neg(v(1))]);
        f.add_clause([Lit::neg(v(0)), Lit::pos(v(1))]);
        f.add_clause([Lit::neg(v(0)), Lit::neg(v(1))]);
        assert!(solve(&f).is_none());
    }

    #[test]
    fn empty_formula_is_trivially_sat() {
        let f = Cnf::new(3);
        let a = solve(&f).unwrap();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2)
        let mut f = Cnf::new(3);
        f.add_clause([Lit::pos(v(0))]);
        f.add_clause([Lit::neg(v(0)), Lit::pos(v(1))]);
        f.add_clause([Lit::neg(v(1)), Lit::pos(v(2))]);
        let a = solve(&f).unwrap();
        assert!(a.value(v(0)) && a.value(v(1)) && a.value(v(2)));
    }

    #[test]
    fn exhaustive_agreement_on_all_small_formulas() {
        // All 3-variable formulas with exactly two 2-literal clauses drawn
        // from a fixed pool: DPLL must agree with truth-table enumeration.
        let pool: Vec<(Lit, Lit)> = {
            let lits = [
                Lit::pos(v(0)),
                Lit::neg(v(0)),
                Lit::pos(v(1)),
                Lit::neg(v(1)),
                Lit::pos(v(2)),
                Lit::neg(v(2)),
            ];
            let mut p = Vec::new();
            for &a in &lits {
                for &b in &lits {
                    p.push((a, b));
                }
            }
            p
        };
        for &(a1, b1) in &pool {
            for &(a2, b2) in &pool {
                let mut f = Cnf::new(3);
                f.add_clause([a1, b1]);
                f.add_clause([a2, b2]);
                let truth_table_sat = (0..8u32).any(|bits| {
                    let assignment =
                        Assignment::new((0..3).map(|i| bits & (1 << i) != 0).collect());
                    f.is_satisfied_by(&assignment)
                });
                assert_eq!(solve(&f).is_some(), truth_table_sat, "{f}");
            }
        }
    }
}
