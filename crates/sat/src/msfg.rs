//! The Maximum Service Flow Graph Problem (Definition 1 of the paper) and an
//! exact brute-force solver.
//!
//! An instance partitions the nodes of a DAG into groups `v₁ … vₙ` (each
//! group's nodes fully connected to the next groups' nodes, edge directions
//! following group order) with positive integer edge weights. A *service
//! flow graph* selects exactly one node per group; its value is the minimum
//! weight among all edges between selected nodes. The decision problem asks
//! for a selection with value `≥ K`.

use serde::{Deserialize, Serialize};
use sflow_graph::{DiGraph, NodeIx};

/// One node of an MSFG instance: which group it belongs to and its index
/// within the group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupedNode {
    /// Group (for the Theorem 1 reduction: the clause).
    pub group: usize,
    /// Position within the group (for the reduction: the literal).
    pub member: usize,
}

/// An MSFG instance.
#[derive(Clone, Debug)]
pub struct MsfgInstance {
    /// The weighted DAG. Edge weights are the link bandwidths of
    /// Definition 1.
    pub graph: DiGraph<GroupedNode, u64>,
    /// Node handles by group.
    pub groups: Vec<Vec<NodeIx>>,
    /// The decision threshold.
    pub k: u64,
}

/// A solved selection: one node per group and the achieved bottleneck.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MsfgSolution {
    /// Selected member index per group.
    pub selection: Vec<usize>,
    /// The minimum edge weight among selected nodes.
    pub bottleneck: u64,
}

/// The bottleneck value of a concrete selection: the minimum weight over all
/// graph edges whose endpoints are both selected. Returns `None` if some
/// selected cross-group pair has **no** edge (treated as disconnected, i.e.
/// an invalid flow graph).
pub fn selection_bottleneck(inst: &MsfgInstance, selection: &[usize]) -> Option<u64> {
    assert_eq!(selection.len(), inst.groups.len(), "one choice per group");
    let chosen: Vec<NodeIx> = selection
        .iter()
        .enumerate()
        .map(|(g, &m)| inst.groups[g][m])
        .collect();
    let mut bottleneck = u64::MAX;
    for (i, &a) in chosen.iter().enumerate() {
        for &b in chosen.iter().skip(i + 1) {
            // Exactly one direction exists (group order); look both ways.
            let w = inst
                .graph
                .find_edge(a, b)
                .or_else(|| inst.graph.find_edge(b, a))
                .map(|e| *inst.graph.edge(e))?;
            bottleneck = bottleneck.min(w);
        }
    }
    Some(bottleneck)
}

/// Exhaustively finds the selection with the maximum bottleneck.
///
/// Exponential in the number of groups — this is the NP-complete problem,
/// solved exactly on the small instances the reduction tests use. Returns
/// `None` only if every selection has a disconnected pair.
pub fn max_bottleneck(inst: &MsfgInstance) -> Option<MsfgSolution> {
    let n = inst.groups.len();
    if n == 0 {
        return Some(MsfgSolution {
            selection: Vec::new(),
            bottleneck: u64::MAX,
        });
    }
    let mut best: Option<MsfgSolution> = None;
    let mut selection = vec![0usize; n];
    loop {
        if let Some(b) = selection_bottleneck(inst, &selection) {
            if best.as_ref().is_none_or(|s| b > s.bottleneck) {
                best = Some(MsfgSolution {
                    selection: selection.clone(),
                    bottleneck: b,
                });
            }
        }
        // Odometer increment.
        let mut i = n;
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            selection[i] += 1;
            if selection[i] < inst.groups[i].len() {
                break;
            }
            selection[i] = 0;
        }
    }
}

/// Decision form: does a selection with bottleneck `≥ inst.k` exist?
pub fn is_feasible(inst: &MsfgInstance) -> bool {
    max_bottleneck(inst).is_some_and(|s| s.bottleneck >= inst.k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two groups of two; one cross pair has weight 1, the rest weight 2.
    fn tiny() -> MsfgInstance {
        let mut graph = DiGraph::new();
        let mut groups = vec![Vec::new(), Vec::new()];
        for (g, group) in groups.iter_mut().enumerate() {
            for m in 0..2usize {
                group.push(graph.add_node(GroupedNode {
                    group: g,
                    member: m,
                }));
            }
        }
        for &a in &groups[0] {
            for &b in &groups[1] {
                let w = if graph.node(a).member == 0 && graph.node(b).member == 0 {
                    1
                } else {
                    2
                };
                graph.add_edge(a, b, w);
            }
        }
        MsfgInstance {
            graph,
            groups,
            k: 2,
        }
    }

    #[test]
    fn brute_force_finds_the_wide_selection() {
        let inst = tiny();
        let sol = max_bottleneck(&inst).unwrap();
        assert_eq!(sol.bottleneck, 2);
        assert!(is_feasible(&inst));
        // The (0, 0) selection is the weight-1 pair.
        assert_eq!(selection_bottleneck(&inst, &[0, 0]), Some(1));
        assert_eq!(selection_bottleneck(&inst, &sol.selection), Some(2));
    }

    #[test]
    fn infeasible_when_k_exceeds_all_weights() {
        let mut inst = tiny();
        inst.k = 3;
        assert!(!is_feasible(&inst));
        // But a best selection still exists.
        assert!(max_bottleneck(&inst).is_some());
    }

    #[test]
    fn missing_edges_disconnect_selections() {
        let mut graph = DiGraph::new();
        let a = graph.add_node(GroupedNode {
            group: 0,
            member: 0,
        });
        let b = graph.add_node(GroupedNode {
            group: 1,
            member: 0,
        });
        let c = graph.add_node(GroupedNode {
            group: 1,
            member: 1,
        });
        graph.add_edge(a, b, 5);
        // a—c intentionally missing.
        let inst = MsfgInstance {
            graph,
            groups: vec![vec![a], vec![b, c]],
            k: 1,
        };
        assert_eq!(selection_bottleneck(&inst, &[0, 0]), Some(5));
        assert_eq!(selection_bottleneck(&inst, &[0, 1]), None);
        assert_eq!(max_bottleneck(&inst).unwrap().bottleneck, 5);
    }

    #[test]
    fn empty_instance_is_vacuously_feasible() {
        let inst = MsfgInstance {
            graph: DiGraph::new(),
            groups: Vec::new(),
            k: 10,
        };
        assert!(is_feasible(&inst));
    }

    #[test]
    #[should_panic(expected = "one choice per group")]
    fn wrong_arity_panics() {
        let inst = tiny();
        let _ = selection_bottleneck(&inst, &[0]);
    }
}
