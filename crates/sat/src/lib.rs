//! Executable version of the paper's NP-completeness proof (Theorem 1).
//!
//! Sec. 3.2 proves the **Maximum Service Flow Graph Problem** (MSFG)
//! NP-complete by reduction from SAT: each clause becomes a group of nodes
//! (one per literal occurrence), every cross-clause node pair is connected,
//! complementary literals get weight-1 edges, all others weight ≥ 2, and a
//! flow graph that selects one node per group with minimum edge weight
//! `≥ K = 2` exists **iff** the formula is satisfiable.
//!
//! This crate makes the proof a tested artifact:
//!
//! * [`cnf`] — CNF formulas and assignments;
//! * [`dpll`] — a DPLL SAT solver (unit propagation + pure literals);
//! * [`msfg`] — the MSFG instance type and an exact brute-force solver;
//! * [`reduction`] — the Theorem 1 transformation plus certificate mappings
//!   in both directions.
//!
//! Property tests in `tests/prop_theorem1.rs` check, on random formulas,
//! that `dpll(φ) = SAT ⇔ msfg(reduce(φ)) ≥ K`, and that certificates map
//! across the reduction soundly.
//!
//! # Example
//!
//! ```
//! use sflow_sat::cnf::{Cnf, Lit, Var};
//! use sflow_sat::{dpll, msfg, reduction};
//!
//! // (x ∨ y) ∧ (¬x ∨ y) ∧ (¬y ∨ x)  — satisfiable with x = y = true.
//! let mut f = Cnf::new(2);
//! let (x, y) = (Var::new(0), Var::new(1));
//! f.add_clause([Lit::pos(x), Lit::pos(y)]);
//! f.add_clause([Lit::neg(x), Lit::pos(y)]);
//! f.add_clause([Lit::neg(y), Lit::pos(x)]);
//!
//! assert!(dpll::solve(&f).is_some());
//! let inst = reduction::sat_to_msfg(&f);
//! let best = msfg::max_bottleneck(&inst).unwrap();
//! assert!(best.bottleneck >= inst.k);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod msfg;
pub mod reduction;
