//! DIMACS CNF interchange format.
//!
//! The standard textual format for SAT instances, so the Theorem 1 pipeline
//! can be driven by externally generated formulas:
//!
//! ```text
//! c an example
//! p cnf 3 2
//! 1 -2 0
//! 2 3 0
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::cnf::{Cnf, Lit, Var};

/// Why DIMACS parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimacsError {
    /// No `p cnf <vars> <clauses>` header before the first clause.
    MissingHeader,
    /// The header line was malformed.
    BadHeader(String),
    /// A token was neither an integer literal nor `0`.
    BadLiteral(String),
    /// A literal referenced a variable beyond the header's count.
    OutOfRange(i64),
    /// Input ended inside a clause (no terminating `0`).
    UnterminatedClause,
    /// A clause was empty (just `0`) — trivially unsatisfiable, rejected to
    /// match [`Cnf::add_clause`]'s contract.
    EmptyClause,
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::MissingHeader => write!(f, "missing 'p cnf' header"),
            DimacsError::BadHeader(l) => write!(f, "malformed header {l:?}"),
            DimacsError::BadLiteral(t) => write!(f, "bad literal token {t:?}"),
            DimacsError::OutOfRange(v) => write!(f, "literal {v} out of declared range"),
            DimacsError::UnterminatedClause => write!(f, "input ended inside a clause"),
            DimacsError::EmptyClause => write!(f, "empty clause"),
        }
    }
}

impl Error for DimacsError {}

/// Parses a DIMACS CNF document. Comment lines (`c …`) and `%`/`0` trailer
/// lines common in benchmark suites are ignored; the declared clause count
/// is not enforced (files in the wild routinely get it wrong).
///
/// # Errors
///
/// See [`DimacsError`].
pub fn parse(input: &str) -> Result<Cnf, DimacsError> {
    let mut cnf: Option<Cnf> = None;
    let mut num_vars: i64 = 0;
    let mut current: Vec<Lit> = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('%') {
            // SATLIB trailer: "%" followed by a lone "0" — stop parsing.
            break;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(DimacsError::BadHeader(line.to_string()));
            }
            num_vars = parts[2]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            let _clauses: usize = parts[3]
                .parse()
                .map_err(|_| DimacsError::BadHeader(line.to_string()))?;
            cnf = Some(Cnf::new(num_vars as u32));
            continue;
        }
        let cnf_ref = cnf.as_mut().ok_or(DimacsError::MissingHeader)?;
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if v == 0 {
                if current.is_empty() {
                    return Err(DimacsError::EmptyClause);
                }
                cnf_ref.add_clause(std::mem::take(&mut current));
            } else {
                if v.abs() > num_vars {
                    return Err(DimacsError::OutOfRange(v));
                }
                let var = Var::new((v.unsigned_abs() - 1) as u32);
                current.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) });
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::UnterminatedClause);
    }
    cnf.ok_or(DimacsError::MissingHeader)
}

/// Renders a formula as DIMACS CNF.
pub fn render(cnf: &Cnf) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.clauses().len());
    for clause in cnf.clauses() {
        for l in clause {
            let v = l.var().index() as i64 + 1;
            let _ = write!(out, "{} ", if l.is_positive() { v } else { -v });
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll;

    #[test]
    fn parses_the_classic_example() {
        let f = parse("c demo\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.clauses().len(), 2);
        assert!(dpll::solve(&f).is_some());
    }

    #[test]
    fn round_trips() {
        let f = parse("p cnf 4 3\n1 -2 0\n-1 3 4 0\n2 0\n").unwrap();
        let again = parse(&render(&f)).unwrap();
        assert_eq!(f, again);
    }

    #[test]
    fn multi_clause_lines_and_trailers() {
        let f = parse("p cnf 2 2\n1 0 -2 0\n%\n0\n").unwrap();
        assert_eq!(f.clauses().len(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse("1 0"), Err(DimacsError::MissingHeader));
        assert!(matches!(parse("p dnf 1 1"), Err(DimacsError::BadHeader(_))));
        assert!(matches!(
            parse("p cnf 1 1\nx 0"),
            Err(DimacsError::BadLiteral(_))
        ));
        assert_eq!(parse("p cnf 1 1\n5 0"), Err(DimacsError::OutOfRange(5)));
        assert_eq!(parse("p cnf 1 1\n1"), Err(DimacsError::UnterminatedClause));
        assert_eq!(parse("p cnf 1 1\n0"), Err(DimacsError::EmptyClause));
        assert!(DimacsError::OutOfRange(5).to_string().contains('5'));
    }

    #[test]
    fn dimacs_feeds_theorem1() {
        // An unsatisfiable core through the whole pipeline.
        let f = parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let inst = crate::reduction::sat_to_msfg(&f);
        assert!(!crate::msfg::is_feasible(&inst));
    }
}
