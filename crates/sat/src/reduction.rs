//! The Theorem 1 transformation: SAT → Maximum Service Flow Graph.
//!
//! Given CNF `C = {c₁ … cₙ}` over `U = {u₁ … uₘ}`:
//!
//! * each clause `cᵢ` becomes a group of nodes, one per literal occurrence;
//! * every pair of nodes from *different* clauses is joined by an edge,
//!   directed from the lower-indexed clause to the higher (making `v₁` the
//!   source side and `vₙ` the sink side of a DAG);
//! * the edge weight is **1** when the two literals are complementary
//!   (`p` and `¬p`), and **2** otherwise;
//! * the threshold is `K = 2`.
//!
//! A selection of one node per group with minimum edge weight `≥ K` picks
//! one literal per clause avoiding all complementary pairs — exactly a
//! satisfying assignment, and vice versa.

use sflow_graph::DiGraph;

use crate::cnf::{Assignment, Cnf, Lit};
use crate::msfg::{GroupedNode, MsfgInstance};

/// Edge weight for a complementary literal pair ("the darker edges").
pub const COMPLEMENT_WEIGHT: u64 = 1;
/// Edge weight for all other pairs (`w(e) ≥ 2` in the paper).
pub const NORMAL_WEIGHT: u64 = 2;
/// The decision threshold `K`.
pub const K: u64 = 2;

/// Transforms a CNF formula into an MSFG instance (polynomial time:
/// `O((Σ|cᵢ|)²)` edges).
///
/// # Panics
///
/// Panics if the formula has an empty clause (Theorem 1's construction
/// requires at least one literal per clause; SAT instances with empty
/// clauses are trivially unsatisfiable).
pub fn sat_to_msfg(cnf: &Cnf) -> MsfgInstance {
    let mut graph = DiGraph::new();
    let mut groups = Vec::with_capacity(cnf.clauses().len());
    for (ci, clause) in cnf.clauses().iter().enumerate() {
        assert!(!clause.is_empty(), "clauses must be non-empty");
        let group: Vec<_> = (0..clause.len())
            .map(|mi| {
                graph.add_node(GroupedNode {
                    group: ci,
                    member: mi,
                })
            })
            .collect();
        groups.push(group);
    }
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            for (a_m, &a) in groups[i].iter().enumerate() {
                for (b_m, &b) in groups[j].iter().enumerate() {
                    let la: Lit = cnf.clauses()[i][a_m];
                    let lb: Lit = cnf.clauses()[j][b_m];
                    let w = if la.is_complement_of(lb) {
                        COMPLEMENT_WEIGHT
                    } else {
                        NORMAL_WEIGHT
                    };
                    graph.add_edge(a, b, w);
                }
            }
        }
    }
    MsfgInstance {
        graph,
        groups,
        k: K,
    }
}

/// Maps a feasible MSFG selection back to a satisfying assignment (the
/// forward direction of Theorem 1's correctness argument): chosen literals
/// are made true, all other variables default to `false`.
///
/// Returns `None` if the selection picks complementary literals (bottleneck
/// below `K` — not a witness).
pub fn selection_to_assignment(cnf: &Cnf, selection: &[usize]) -> Option<Assignment> {
    let chosen: Vec<Lit> = selection
        .iter()
        .enumerate()
        .map(|(ci, &mi)| cnf.clauses()[ci][mi])
        .collect();
    for (i, &a) in chosen.iter().enumerate() {
        for &b in chosen.iter().skip(i + 1) {
            if a.is_complement_of(b) {
                return None;
            }
        }
    }
    let mut values = vec![false; cnf.num_vars() as usize];
    for l in chosen {
        values[l.var().index()] = l.is_positive();
    }
    Some(Assignment::new(values))
}

/// Maps a satisfying assignment to a feasible MSFG selection (the converse
/// direction): from each clause, pick the first literal the assignment makes
/// true.
///
/// Returns `None` if the assignment does not satisfy the formula.
pub fn assignment_to_selection(cnf: &Cnf, assignment: &Assignment) -> Option<Vec<usize>> {
    cnf.clauses()
        .iter()
        .map(|clause| {
            clause
                .iter()
                .position(|l| l.eval(assignment.value(l.var())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Var;
    use crate::{dpll, msfg};

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    /// The paper's Fig. 7 example, with the negations chosen definitively
    /// (the published scan loses overbars): U = {x, y, z, w},
    /// C = {{x, ¬y, z, w}, {¬x, y, ¬z}, {x, ¬y, ¬w}, {y, z}}.
    fn fig7() -> Cnf {
        let (x, y, z, w) = (v(0), v(1), v(2), v(3));
        let mut f = Cnf::new(4);
        f.add_clause([Lit::pos(x), Lit::neg(y), Lit::pos(z), Lit::pos(w)]);
        f.add_clause([Lit::neg(x), Lit::pos(y), Lit::neg(z)]);
        f.add_clause([Lit::pos(x), Lit::neg(y), Lit::neg(w)]);
        f.add_clause([Lit::pos(y), Lit::pos(z)]);
        f
    }

    #[test]
    fn fig7_shape_matches_the_paper() {
        let f = fig7();
        let inst = sat_to_msfg(&f);
        // 4 + 3 + 3 + 2 = 12 nodes.
        assert_eq!(inst.graph.node_count(), 12);
        // All cross-clause pairs: 4·3 + 4·3 + 4·2 + 3·3 + 3·2 + 3·2 = 53.
        assert_eq!(inst.graph.edge_count(), 53);
        assert_eq!(inst.k, 2);
        // Edges are directed from earlier to later clauses.
        for e in inst.graph.edges() {
            assert!(inst.graph.node(e.from).group < inst.graph.node(e.to).group);
        }
    }

    #[test]
    fn fig7_feasible_iff_satisfiable() {
        let f = fig7();
        let sat = dpll::solve(&f);
        assert!(sat.is_some(), "the Fig. 7 instance is satisfiable");
        let inst = sat_to_msfg(&f);
        let sol = msfg::max_bottleneck(&inst).unwrap();
        assert!(sol.bottleneck >= inst.k);
        // The feasible selection maps to a satisfying assignment.
        let a = selection_to_assignment(&f, &sol.selection).unwrap();
        assert!(f.is_satisfied_by(&a));
        // And the satisfying assignment maps back to a feasible selection.
        let sel = assignment_to_selection(&f, &sat.unwrap()).unwrap();
        assert!(msfg::selection_bottleneck(&inst, &sel).unwrap() >= inst.k);
    }

    #[test]
    fn unsat_formula_is_infeasible() {
        // (x) ∧ (¬x): the only selection picks complementary literals.
        let mut f = Cnf::new(1);
        f.add_clause([Lit::pos(v(0))]);
        f.add_clause([Lit::neg(v(0))]);
        let inst = sat_to_msfg(&f);
        assert!(!msfg::is_feasible(&inst));
        assert_eq!(selection_to_assignment(&f, &[0, 0]), None);
    }

    #[test]
    fn complement_edges_get_weight_one() {
        let mut f = Cnf::new(1);
        f.add_clause([Lit::pos(v(0))]);
        f.add_clause([Lit::neg(v(0))]);
        let inst = sat_to_msfg(&f);
        assert_eq!(inst.graph.edge_count(), 1);
        let e = inst.graph.edges().next().unwrap();
        assert_eq!(*e.weight, COMPLEMENT_WEIGHT);
    }

    #[test]
    fn assignment_to_selection_rejects_non_witnesses() {
        let mut f = Cnf::new(1);
        f.add_clause([Lit::pos(v(0))]);
        let bad = Assignment::new(vec![false]);
        assert_eq!(assignment_to_selection(&f, &bad), None);
    }

    #[test]
    fn same_clause_nodes_are_never_linked() {
        let f = fig7();
        let inst = sat_to_msfg(&f);
        for e in inst.graph.edges() {
            assert_ne!(inst.graph.node(e.from).group, inst.graph.node(e.to).group);
        }
    }
}
