//! CNF formulas, literals and assignments.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A propositional variable, 0-indexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(u32);

impl Var {
    /// Creates a variable by index.
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// The variable's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit {
    var: Var,
    positive: bool,
}

impl Lit {
    /// The positive literal `v`.
    pub const fn pos(var: Var) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// The negative literal `¬v`.
    pub const fn neg(var: Var) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// The literal's variable.
    pub const fn var(self) -> Var {
        self.var
    }

    /// `true` for `v`, `false` for `¬v`.
    pub const fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal.
    #[must_use]
    pub const fn negated(self) -> Self {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// `true` if `self` and `other` are `p` and `¬p` of the same variable.
    pub fn is_complement_of(self, other: Lit) -> bool {
        self.var == other.var && self.positive != other.positive
    }

    /// Evaluates under `value` of its variable.
    pub fn eval(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A total truth assignment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment(Vec<bool>);

impl Assignment {
    /// Creates an assignment from per-variable values.
    pub fn new(values: Vec<bool>) -> Self {
        Assignment(values)
    }

    /// The value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn value(&self, var: Var) -> bool {
        self.0[var.index()]
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A CNF formula: a conjunction of clauses, each a disjunction of literals.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables with no clauses yet.
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds one clause (a disjunction of the given literals).
    ///
    /// # Panics
    ///
    /// Panics if the clause is empty (an empty clause is trivially
    /// unsatisfiable; construct such formulas explicitly in tests if needed)
    /// or mentions a variable out of range.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> &mut Self {
        let clause: Vec<Lit> = lits.into_iter().collect();
        assert!(!clause.is_empty(), "clauses must be non-empty");
        for l in &clause {
            assert!(
                (l.var().index() as u32) < self.num_vars,
                "literal {l} out of range"
            );
        }
        self.clauses.push(clause);
        self
    }

    /// The number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Evaluates the formula under a total assignment.
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment.value(l.var()))))
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_algebra() {
        let x = Var::new(0);
        assert_eq!(Lit::pos(x).negated(), Lit::neg(x));
        assert!(Lit::pos(x).is_complement_of(Lit::neg(x)));
        assert!(!Lit::pos(x).is_complement_of(Lit::pos(x)));
        assert!(!Lit::pos(x).is_complement_of(Lit::neg(Var::new(1))));
        assert!(Lit::pos(x).eval(true));
        assert!(!Lit::pos(x).eval(false));
        assert!(Lit::neg(x).eval(false));
        assert!(Lit::pos(x).is_positive());
        assert_eq!(Lit::neg(x).to_string(), "¬x0");
    }

    #[test]
    fn evaluation() {
        let mut f = Cnf::new(2);
        let (x, y) = (Var::new(0), Var::new(1));
        f.add_clause([Lit::pos(x), Lit::neg(y)]);
        f.add_clause([Lit::pos(y)]);
        assert!(f.is_satisfied_by(&Assignment::new(vec![true, true])));
        assert!(!f.is_satisfied_by(&Assignment::new(vec![false, true])));
        assert_eq!(f.num_vars(), 2);
        assert_eq!(f.clauses().len(), 2);
    }

    #[test]
    fn display_formats() {
        let mut f = Cnf::new(2);
        f.add_clause([Lit::pos(Var::new(0)), Lit::neg(Var::new(1))]);
        assert_eq!(f.to_string(), "(x0 ∨ ¬x1)");
        assert_eq!(Cnf::new(0).to_string(), "⊤");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_clause_panics() {
        Cnf::new(1).add_clause([]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        Cnf::new(1).add_clause([Lit::pos(Var::new(5))]);
    }

    #[test]
    fn assignment_accessors() {
        let a = Assignment::new(vec![true, false]);
        assert!(a.value(Var::new(0)));
        assert!(!a.value(Var::new(1)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(Assignment::new(vec![]).is_empty());
    }
}
