//! Loopback integration tests: the acceptance criteria of the server
//! subsystem, exercised over real TCP.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use sflow_core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow_core::fixtures::{diamond_fixture, diamond_requirement};
use sflow_server::{serve, Algorithm, Client, Mutation, Request, Response, ServerConfig, World};

const DIAMOND_SPEC: &str = "0>1>3, 0>2>3";
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 30; // 4 × 30 = 120 ≥ 100

/// ≥ 100 federations from ≥ 4 concurrent clients, every response equal to
/// the centralized result; solve-cache hits accumulate and every tenant
/// shares one forest (so 120 identical sessions fit residual capacity as a
/// single booking); a mutation bumps the epoch and invalidates the cache.
#[test]
fn concurrent_clients_match_the_centralized_result() {
    let fixture = diamond_fixture();
    let expected = SflowAlgorithm::default()
        .federate(&fixture.context(), &diamond_requirement())
        .unwrap();
    let expected_kbps = expected.quality().bandwidth.as_kbps();
    assert_eq!(expected_kbps, 80, "diamond fixture sanity");

    // Residual routing ON (the default): forest sharing reserves the
    // shared links once, however many tenants attach, so the whole herd
    // fits capacity that a booking per session would blow through.
    let config = ServerConfig::default();
    let handle = serve(World::new(fixture), &config).unwrap();
    let addr = handle.addr();

    // Pre-warm: one cold solve fills the requirement-keyed cache and
    // founds the forest; every concurrent request below is then a
    // deterministic warm hit on the same shared flow.
    let mut warmer = Client::connect(addr).unwrap();
    match warmer
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, expected_kbps),
        other => panic!("expected Federated, got {other:?}"),
    }

    let threads: Vec<_> = (0..CLIENTS)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..REQUESTS_PER_CLIENT {
                    match client
                        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
                        .unwrap()
                    {
                        Response::Federated(summary) => {
                            assert_eq!(summary.bandwidth_kbps, expected_kbps);
                            assert_eq!(summary.epoch, 0);
                            assert_eq!(summary.instances.len(), 4);
                        }
                        other => panic!("expected Federated, got {other:?}"),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    let total = (CLIENTS * REQUESTS_PER_CLIENT + 1) as u64; // + the pre-warm
    assert_eq!(stats.served, total);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.epoch, 0);
    assert_eq!(stats.sessions, total);
    assert_eq!(
        stats.cache_misses, 1,
        "only the pre-warm solve is cold: {stats:?}"
    );
    assert_eq!(stats.cache_hits, total - 1, "every repeat is a warm hit");
    assert_eq!(stats.cache_revalidation_fails, 0);
    // The hop matrix was consulted exactly once — warm hits never solve.
    assert_eq!(stats.hop_cache_misses, 1, "{stats:?}");
    assert_eq!(stats.hop_cache_hits, 0, "{stats:?}");
    // Every tenant shares the one forest (and the one booking).
    assert_eq!(stats.forests, 1, "{stats:?}");
    assert_eq!(stats.forest_tenants, total, "{stats:?}");
    assert!(stats.latency_p50_us <= stats.latency_p99_us);

    // Mutate: fail an instance the sessions route through. The epoch bumps,
    // the hop-matrix cache invalidates, and sessions are repaired.
    let world_probe = diamond_fixture();
    let victim = *expected
        .instances()
        .values()
        .find(|i| **i != world_probe.overlay.instance(world_probe.source))
        .unwrap();
    match client
        .mutate(Mutation::FailInstance { instance: victim })
        .unwrap()
    {
        Response::Mutated {
            epoch,
            repaired,
            dropped,
        } => {
            assert_eq!(epoch, 1);
            assert_eq!(
                repaired + dropped,
                CLIENTS * REQUESTS_PER_CLIENT + 1,
                "every session is accounted for"
            );
        }
        other => panic!("expected Mutated, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.epoch, 1, "mutation must bump the epoch");

    // Drain the herd so the next federate is not residual-refused (the
    // repaired forest holder books the surviving branch). Session ids are
    // sequential; a session the repair sweep dropped answers an error.
    for id in 0..total {
        let _ = client.release(id).unwrap();
    }
    let ledger = client.load_map().unwrap();
    assert!(ledger.links.is_empty(), "no leaked reservation: {ledger:?}");

    // The structural mutation renumbers the overlay: both the solve cache
    // and the hop matrix start cold at the new epoch.
    let misses_before = stats.cache_misses;
    match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => assert_eq!(summary.epoch, 1),
        other => panic!("expected Federated after mutation, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache_misses,
        misses_before + 1,
        "a structural epoch must invalidate the solve cache"
    );
    assert_eq!(stats.hop_cache_misses, 2, "and the hop-matrix cache");

    handle.shutdown();
}

/// A QoS-only mutation goes down the incremental patch path: the rebuild
/// counters record it, and the structural hop-matrix cache stays warm
/// (retagged to the new epoch) — only an instance failure clears it. The
/// solve cache is stricter: a patch on a link the cached flow traverses
/// dirties the entry, so the next federate is a solve-cache miss even
/// though the hop matrix hits.
#[test]
fn qos_mutations_patch_and_keep_the_hop_cache_warm() {
    // Residual routing ON (the default): each session is released before
    // the next mutation, so booked load never constrains the next solve.
    let handle = serve(World::new(diamond_fixture()), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Prime both caches.
    let first = match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => summary,
        other => panic!("expected Federated, got {other:?}"),
    };
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_misses, 1);
    assert_eq!(stats.hop_cache_misses, 1);
    assert_eq!(stats.rebuilds, 0);
    match client.release(first.session).unwrap() {
        Response::Released { .. } => {}
        other => panic!("expected Released, got {other:?}"),
    }

    // Find a real overlay link via a probe fixture (same topology).
    let probe = diamond_fixture();
    let link = probe
        .overlay
        .graph()
        .out_edges(probe.source)
        .next()
        .unwrap();
    let from = probe.overlay.instance(link.from);
    let to = probe.overlay.instance(link.to);
    match client
        .mutate(Mutation::SetLinkQos {
            from,
            to,
            bandwidth_kbps: 500,
            latency_us: 1,
        })
        .unwrap()
    {
        Response::Mutated { epoch, .. } => assert_eq!(epoch, 1),
        other => panic!("expected Mutated, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.rebuilds, 1, "the patch must be recorded: {stats:?}");
    assert!(
        stats.trees_recomputed < 4,
        "a single-edge QoS change must not recompute every diamond tree: {stats:?}"
    );

    // The hop matrix is structural, so the QoS mutation must NOT cost a
    // rebuild: the cached matrix is retagged and the next solve hits. The
    // solve cache, by contrast, dirtied the entry — the patched link is on
    // the cached flow's path — so the same federate is a solve-cache miss.
    let second = match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => {
            assert_eq!(summary.epoch, 1);
            summary
        }
        other => panic!("expected Federated, got {other:?}"),
    };
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.hop_cache_misses, 1,
        "retag must avoid a rebuild: {stats:?}"
    );
    assert_eq!(stats.hop_cache_hits, 1);
    assert_eq!(
        stats.cache_misses, 2,
        "a patch on a cached path must dirty the solve cache: {stats:?}"
    );
    assert_eq!(stats.cache_hits, 0);
    match client.release(second.session).unwrap() {
        Response::Released { .. } => {}
        other => panic!("expected Released, got {other:?}"),
    }

    // An instance failure renumbers the overlay; the cache must clear.
    let expected = SflowAlgorithm::default()
        .federate(&probe.context(), &diamond_requirement())
        .unwrap();
    let victim = *expected
        .instances()
        .values()
        .find(|i| **i != probe.overlay.instance(probe.source))
        .unwrap();
    match client
        .mutate(Mutation::FailInstance { instance: victim })
        .unwrap()
    {
        Response::Mutated { epoch, .. } => assert_eq!(epoch, 2),
        other => panic!("expected Mutated, got {other:?}"),
    }
    match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => assert_eq!(summary.epoch, 2),
        other => panic!("expected Federated, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.hop_cache_misses, 2,
        "structural mutations must clear the hop cache: {stats:?}"
    );
    assert_eq!(stats.cache_misses, 3, "and the solve cache");
    assert_eq!(stats.rebuilds, 2);
    assert!(stats.rebuild_us_total > 0);

    handle.shutdown();
}

/// A full admission queue sheds with an explicit `Overloaded` — no hangs,
/// no panics — while at least one admitted request completes.
#[test]
fn full_admission_queue_sheds_explicitly() {
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        debug_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    };
    let handle = serve(World::new(diamond_fixture()), &config).unwrap();
    let addr = handle.addr();

    let served = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                let mut client = Client::connect(addr).unwrap();
                match client
                    .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
                    .unwrap()
                {
                    Response::Federated(_) => {
                        served.fetch_add(1, Ordering::SeqCst);
                    }
                    Response::Overloaded => {
                        shed.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("unexpected response under overload: {other:?}"),
                }
            });
        }
    });
    assert!(
        served.load(Ordering::SeqCst) >= 1,
        "admitted requests must still complete"
    );
    assert!(
        shed.load(Ordering::SeqCst) >= 1,
        "a full queue must shed explicitly"
    );

    // Stats stays answerable under (residual) load and records the sheds.
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shed as usize, shed.load(Ordering::SeqCst));

    handle.shutdown();
}

/// The load plane over the wire: residual admission, the load-map ledger,
/// release, and an on-demand rebalancer sweep — the full session lifecycle
/// with reservations conserved at every step.
#[test]
fn the_load_plane_round_trips_over_the_wire() {
    // Default config: residual routing on, rebalance on demand.
    let handle = serve(World::new(diamond_fixture()), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // An empty server has an empty ledger.
    let ledger = client.load_map().unwrap();
    assert_eq!(ledger.epoch, 0);
    assert_eq!(ledger.max_utilization_permille, 0);
    assert!(ledger.links.is_empty());

    // The first session books its path.
    let first = match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => summary,
        other => panic!("expected Federated, got {other:?}"),
    };
    assert_eq!(first.bandwidth_kbps, 80);
    let ledger = client.load_map().unwrap();
    assert!(!ledger.links.is_empty());
    assert!(ledger.max_utilization_permille >= 800, "{ledger:?}");
    for link in &ledger.links {
        assert_eq!(
            link.residual_kbps,
            link.capacity_kbps.saturating_sub(link.reserved_kbps),
            "{link:?}"
        );
        assert!(link.estimate_kbps > 0, "the DRE estimator saw the open");
    }

    // A second, *distinct* requirement (an identical one would share the
    // first session's forest and booking) must fit into what the first
    // left free — residual admission at work on the default path.
    let second = match client.federate("0>1>3", Algorithm::Sflow, Some(2)).unwrap() {
        Response::Federated(summary) => summary,
        other => panic!("expected Federated, got {other:?}"),
    };
    assert!(second.bandwidth_kbps < first.bandwidth_kbps);
    assert_ne!(first.instances, second.instances);

    // A sweep over a world with no better placement changes nothing
    // catastrophic and reports the utilization it saw.
    match client.rebalance().unwrap() {
        Response::Rebalanced {
            max_utilization_permille,
            ..
        } => assert!(max_utilization_permille > 0),
        other => panic!("expected Rebalanced, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.sessions, 2);
    assert!(stats.max_link_utilization_permille > 0);
    // Each requirement founded a (single-tenant) forest of its own.
    assert_eq!(stats.forests, 2, "{stats:?}");
    assert_eq!(stats.forest_tenants, 2, "{stats:?}");

    // Releasing both sessions drains the ledger completely.
    for summary in [&first, &second] {
        match client.release(summary.session).unwrap() {
            Response::Released { session } => assert_eq!(session, summary.session),
            other => panic!("expected Released, got {other:?}"),
        }
    }
    let ledger = client.load_map().unwrap();
    assert!(ledger.links.is_empty(), "no leaked reservation: {ledger:?}");
    assert_eq!(ledger.max_utilization_permille, 0);
    // Releasing an unknown session is an error, not a crash.
    match client.release(first.session).unwrap() {
        Response::Error(msg) => assert!(msg.contains("no such session"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // With everything released, a repeat federate gets the wide route back
    // — served warm: the cached epoch-0 flow revalidates against the now
    // empty plane (its forest is gone, so the full reservation re-books).
    let hits_before = client.stats().unwrap().cache_hits;
    match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, 80),
        other => panic!("expected Federated, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache_hits,
        hits_before + 1,
        "a released world revalidates the cached flow: {stats:?}"
    );
    assert_eq!(stats.cache_revalidation_fails, 0);

    handle.shutdown();
}

/// The wire protocol answers errors rather than dying: bad requirements,
/// unknown instances, control requests, then a clean shutdown frame.
#[test]
fn errors_and_shutdown_over_the_wire() {
    let handle = serve(World::new(diamond_fixture()), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    match client.federate("0>x", Algorithm::Sflow, None).unwrap() {
        Response::Error(msg) => assert!(msg.contains("bad requirement"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // Unsatisfiable over this overlay: service 9 has no instances.
    match client.federate("0>9", Algorithm::Sflow, None).unwrap() {
        Response::Error(_) => {}
        other => panic!("expected Error, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.served, 0);

    // Global and baseline algorithms serve over the same wire.
    for algorithm in [Algorithm::Global, Algorithm::Fixed, Algorithm::ServicePath] {
        match client.federate(DIAMOND_SPEC, algorithm, None).unwrap() {
            Response::Federated(summary) => assert!(summary.bandwidth_kbps > 0),
            other => panic!("{algorithm:?} failed: {other:?}"),
        }
    }

    assert_eq!(client.shutdown().unwrap(), Response::ShuttingDown);
    handle.shutdown();

    // A request too large for one frame is rejected client-side.
    let huge = "0>1,".repeat(1 << 19);
    let handle = serve(World::new(diamond_fixture()), &ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client
        .request(&Request::Federate {
            requirement: huge,
            algorithm: Algorithm::Sflow,
            hop_limit: None,
        })
        .unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    handle.shutdown();
}
