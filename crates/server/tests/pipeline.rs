//! Pipelined-framing regression tests against a live reactor server.
//!
//! Three behaviours the reactor plane must hold that the old
//! thread-per-connection server never exercised: responses may legitimately
//! overtake each other on one socket (and are matched by `request_id`, not
//! arrival order); a frame dribbled in one byte per readiness event is
//! assembled exactly like one that arrived whole; and a peer that sends
//! fast but reads slowly is parked by backpressure instead of ballooning
//! the server's write buffer.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use sflow_core::fixtures::diamond_fixture;
use sflow_server::wire::{encode_frame, read_frame};
use sflow_server::{
    serve, Algorithm, Client, PipelinedClient, Request, RequestFrame, Response, ResponseFrame,
    ServerConfig, World,
};

const DIAMOND_SPEC: &str = "0>1>3, 0>2>3";

fn reactor_server(config: ServerConfig) -> sflow_server::ServerHandle {
    assert!(config.reactor_threads > 0, "these tests target the reactor");
    serve(World::new(diamond_fixture()), &config).unwrap()
}

fn federate_request() -> Request {
    Request::Federate {
        requirement: DIAMOND_SPEC.to_owned(),
        algorithm: Algorithm::Sflow,
        hop_limit: Some(2),
    }
}

/// A control request answered inline on the reactor thread must overtake a
/// solve that is still sitting on the admission queue: the solve's answer
/// can only come back through the completion channel, one poller wakeup
/// later at the earliest.
#[test]
fn inline_stats_overtakes_a_queued_federate() {
    let handle = reactor_server(ServerConfig {
        reactor_threads: 1,
        residual: false,
        ..ServerConfig::default()
    });
    let mut pipe = PipelinedClient::connect(handle.addr()).unwrap();

    let federate_id = pipe.send(&federate_request()).unwrap();
    let stats_id = pipe.send(&Request::Stats).unwrap();
    assert_eq!(pipe.in_flight(), 2);

    let first = pipe.recv_any().unwrap();
    assert_eq!(
        first.request_id, stats_id,
        "the inline Stats answer must arrive before the queued solve"
    );
    assert!(matches!(first.response, Response::Stats(_)), "{first:?}");

    let second = pipe.recv_any().unwrap();
    assert_eq!(second.request_id, federate_id);
    match second.response {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, 80),
        other => panic!("expected Federated, got {other:?}"),
    }
    assert_eq!(pipe.in_flight(), 0);
    handle.shutdown();
}

/// `recv` must hand back the requested id and stash the overtaker, so a
/// blocking-style caller sees its own answer even when the wire reorders.
#[test]
fn recv_by_id_stashes_the_overtaking_response() {
    let handle = reactor_server(ServerConfig {
        reactor_threads: 1,
        residual: false,
        ..ServerConfig::default()
    });
    let mut pipe = PipelinedClient::connect(handle.addr()).unwrap();

    let federate_id = pipe.send(&federate_request()).unwrap();
    let stats_id = pipe.send(&Request::Stats).unwrap();

    // Wait for the *solve* first: the Stats answer overtakes it on the wire
    // and must be stashed, not lost.
    match pipe.recv(federate_id).unwrap() {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, 80),
        other => panic!("expected Federated, got {other:?}"),
    }
    match pipe.recv(stats_id).unwrap() {
        Response::Stats(_) => {}
        other => panic!("expected the stashed Stats, got {other:?}"),
    }
    handle.shutdown();
}

/// One byte per write, with a pause between bytes so each lands as its own
/// readiness event: the incremental decoder must assemble the frame exactly
/// as if it had arrived whole.
#[test]
fn a_frame_dribbled_one_byte_at_a_time_is_assembled() {
    let handle = reactor_server(ServerConfig {
        reactor_threads: 1,
        residual: false,
        ..ServerConfig::default()
    });

    let frame = RequestFrame {
        request_id: 7,
        request: federate_request(),
    };
    let bytes = encode_frame(&frame).unwrap();

    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for byte in &bytes {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        thread::sleep(Duration::from_millis(1));
    }

    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reply: ResponseFrame = read_frame(&mut stream)
        .expect("server should answer the dribbled frame")
        .expect("server should answer, not hang up");
    assert_eq!(reply.request_id, 7);
    match reply.response {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, 80),
        other => panic!("expected Federated, got {other:?}"),
    }
    handle.shutdown();
}

/// A peer that fires a burst of requests and then refuses to read must be
/// paused: the server stops polling it for read once staged responses cross
/// the high-water mark, so its write buffer stays bounded by the mark plus
/// one frame instead of scaling with the burst. Draining the socket lifts
/// the pause and every response still arrives, each under its own id.
#[test]
fn a_slow_reader_is_paused_and_its_buffer_stays_bounded() {
    // ~700 bytes per Stats response: the burst's answers total ~1.4 MB,
    // comfortably past what the loopback socket buffers can absorb, so the
    // pause genuinely sticks instead of draining into the kernel.
    const HIGH_WATER: usize = 2048;
    const BURST: usize = 2000;
    let handle = reactor_server(ServerConfig {
        reactor_threads: 1,
        write_high_water: HIGH_WATER,
        residual: false,
        ..ServerConfig::default()
    });

    let mut pipe = PipelinedClient::connect(handle.addr()).unwrap();
    for _ in 0..BURST {
        pipe.send(&Request::Stats).unwrap();
    }
    // Sends are corked until a recv; push the whole burst onto the wire now
    // while still refusing to read any response.
    pipe.flush().unwrap();

    // Observe the pause from a second connection while the first one
    // stubbornly refuses to read.
    let mut probe = Client::connect(handle.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let s = probe.stats().unwrap();
        if s.backpressure_pauses >= 1 || Instant::now() > deadline {
            break s;
        }
        thread::sleep(Duration::from_millis(5));
    };
    assert!(
        stats.backpressure_pauses >= 1,
        "the burst must trip the high-water mark: {stats:?}"
    );
    assert!(stats.connections_open >= 2, "{stats:?}");
    // Let the stall reach steady state (kernel buffers full, pause held),
    // then check the bound: the mark, plus the frame that crossed it, plus
    // the probe connection's own transient. A server that kept decoding
    // while the peer slept would be holding ~BURST responses (~1.4 MB).
    thread::sleep(Duration::from_millis(300));
    let stats = probe.stats().unwrap();
    assert!(
        stats.write_buffered_bytes <= (HIGH_WATER + 8 * 1024) as u64,
        "write buffer must stay near the high-water mark: {stats:?}"
    );

    // Now drain: every response arrives, ids 1..=BURST exactly once.
    let mut seen = vec![false; BURST + 1];
    for _ in 0..BURST {
        let frame = pipe.recv_any().unwrap();
        assert!(matches!(frame.response, Response::Stats(_)), "{frame:?}");
        let id = frame.request_id as usize;
        assert!((1..=BURST).contains(&id), "unexpected id {id}");
        assert!(!seen[id], "duplicate response for id {id}");
        seen[id] = true;
    }
    assert!(seen[1..].iter().all(|&s| s), "every request answered");

    // With the stall over, the staged-byte gauge drains back to zero.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = probe.stats().unwrap();
        if s.write_buffered_bytes == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "gauge never drained: {s:?}");
        thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
}
