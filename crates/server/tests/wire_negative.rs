//! Negative-path wire tests against a live loopback server.
//!
//! Every test feeds the server a different kind of malformed traffic over
//! raw TCP, then proves two things with a fresh well-behaved [`Client`]:
//! the offending *connection* got an error (when the stream allowed one)
//! and the *server* is still fully alive — the worker pool, the session
//! table and every other connection are untouched by a bad peer.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use sflow_core::fixtures::diamond_fixture;
use sflow_server::wire::{read_frame, MAX_FRAME};
use sflow_server::{
    serve, Algorithm, Client, Response, ResponseFrame, ServerConfig, StatsSnapshot, World,
};

const DIAMOND_SPEC: &str = "0>1>3, 0>2>3";

fn live_server() -> sflow_server::ServerHandle {
    serve(
        World::new(diamond_fixture()),
        &ServerConfig {
            audit: true, // the auditor must also survive hostile traffic
            // Blind routing: `assert_server_alive` opens a full-bandwidth
            // session per call, which residual booking would not admit twice.
            residual: false,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Proves the server still answers real work after the hostile connection.
fn assert_server_alive(addr: std::net::SocketAddr) {
    let mut client = Client::connect(addr).unwrap();
    match client
        .federate(DIAMOND_SPEC, Algorithm::Sflow, Some(2))
        .unwrap()
    {
        Response::Federated(summary) => assert_eq!(summary.bandwidth_kbps, 80),
        other => panic!("expected Federated, got {other:?}"),
    }
}

/// Polls stats until the wire-error counter reaches `want` (the bad peer's
/// connection thread runs concurrently with the test, so the count lands
/// asynchronously) or a generous deadline passes.
fn wait_for_wire_errors(client: &mut Client, want: u64) -> StatsSnapshot {
    for _ in 0..500 {
        let s = client.stats().unwrap();
        if s.wire_errors >= want {
            return s;
        }
        thread::sleep(Duration::from_millis(10));
    }
    client.stats().unwrap()
}

/// Reads the server's error reply off a raw stream. A protocol error is not
/// attributable to any request, so its envelope carries the reserved id 0.
fn read_error_reply(stream: &mut TcpStream) -> Response {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let frame = read_frame::<ResponseFrame>(stream)
        .expect("server should answer before closing")
        .expect("server should answer, not just hang up");
    assert_eq!(frame.request_id, 0, "protocol errors carry the reserved id");
    frame.response
}

#[test]
fn truncated_frame_degrades_only_its_connection() {
    let handle = live_server();
    let addr = handle.addr();

    // Declare 100 bytes, send 3, hang up: a torn frame.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(&100u32.to_be_bytes()).unwrap();
    bad.write_all(b"abc").unwrap();
    drop(bad);

    assert_server_alive(addr);

    let mut client = Client::connect(addr).unwrap();
    let stats = wait_for_wire_errors(&mut client, 1);
    assert_eq!(stats.wire_errors, 1, "torn frame must be counted");
    assert_eq!(stats.audit_violations, 0);
    handle.shutdown();
}

#[test]
fn oversized_declared_length_is_answered_and_dropped() {
    let handle = live_server();
    let addr = handle.addr();

    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes())
        .unwrap();
    match read_error_reply(&mut bad) {
        Response::Error(msg) => assert!(msg.contains("MAX_FRAME"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The server hangs up after answering a protocol error.
    let mut rest = Vec::new();
    assert_eq!(bad.read_to_end(&mut rest).unwrap(), 0);

    assert_server_alive(addr);
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(wait_for_wire_errors(&mut client, 1).wire_errors, 1);
    handle.shutdown();
}

#[test]
fn valid_frame_with_invalid_json_is_answered_and_dropped() {
    let handle = live_server();
    let addr = handle.addr();

    let body = b"{\"definitely\": \"not a Request\"}";
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(&(body.len() as u32).to_be_bytes()).unwrap();
    bad.write_all(body).unwrap();
    match read_error_reply(&mut bad) {
        Response::Error(msg) => assert!(msg.contains("protocol error"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    assert_server_alive(addr);
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(wait_for_wire_errors(&mut client, 1).wire_errors, 1);
    handle.shutdown();
}

#[test]
fn a_barrage_of_bad_peers_leaves_the_server_serving() {
    let handle = live_server();
    let addr = handle.addr();

    for i in 0..10u32 {
        let mut bad = TcpStream::connect(addr).unwrap();
        match i % 3 {
            0 => {
                // torn frame
                let _ = bad.write_all(&64u32.to_be_bytes());
                let _ = bad.write_all(b"x");
            }
            1 => {
                // oversized prefix
                let _ = bad.write_all(&(u32::MAX).to_be_bytes());
            }
            _ => {
                // non-JSON body
                let _ = bad.write_all(&4u32.to_be_bytes());
                let _ = bad.write_all(b"@@@@");
            }
        }
        drop(bad);
    }

    // Interleaved real traffic still works, repeatedly.
    for _ in 0..5 {
        assert_server_alive(addr);
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = wait_for_wire_errors(&mut client, 10);
    assert_eq!(stats.wire_errors, 10);
    assert_eq!(stats.served, 5); // the five alive checks above
    handle.shutdown();
}
