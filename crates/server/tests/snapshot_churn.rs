//! Churn stress for the snapshot world: one mutator thread cycles link-QoS
//! flaps and instance failures while eight solver threads federate
//! continuously. Every solve must observe a *consistent* snapshot — its
//! flow graph passes the [`FlowGraphAuditor`] against its own snapshot's
//! overlay, never against a half-mutated world — and the epochs each
//! solver observes must be monotonic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use sflow_core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow_core::fixtures::random_fixture;
use sflow_core::validate::FlowGraphAuditor;
use sflow_core::ServiceRequirement;
use sflow_net::ServiceId;
use sflow_server::{Mutation, World};

#[test]
fn solvers_under_churn_always_observe_consistent_snapshots() {
    const MUTATIONS: u64 = 60;
    const SOLVERS: usize = 8;

    // Services 0..=3 carry the requirement; service 4 exists to be failed,
    // so instance failures renumber every overlay node without ever making
    // the requirement unsatisfiable.
    let sids: Vec<ServiceId> = (0..5).map(ServiceId::new).collect();
    let fx = random_fixture(24, &sids, 3, None, 7);
    let req: ServiceRequirement = "0>1>3, 0>2>3".parse().unwrap();

    let mut world = World::new(fx);
    SflowAlgorithm::default()
        .federate(&world.context(), &req)
        .expect("the epoch-0 world must be solvable");

    let snap = world.handle();
    let done = Arc::new(AtomicBool::new(false));

    let solvers: Vec<_> = (0..SOLVERS)
        .map(|_| {
            let snap = Arc::clone(&snap);
            let done = Arc::clone(&done);
            let req = req.clone();
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut solved = 0u64;
                loop {
                    let snapshot = snap.load();
                    assert!(
                        snapshot.epoch() >= last_epoch,
                        "published epochs regressed: {} after {}",
                        snapshot.epoch(),
                        last_epoch
                    );
                    last_epoch = snapshot.epoch();
                    // The context shares the snapshot's overlay and table;
                    // everything below is consistent with epoch `last_epoch`
                    // no matter what the mutator publishes meanwhile.
                    let ctx = snapshot.context();
                    let flow = SflowAlgorithm::default()
                        .federate(&ctx, &req)
                        .expect("every published snapshot must stay solvable");
                    let report = FlowGraphAuditor::new(&ctx, &req).audit(&flow);
                    assert!(
                        report.is_clean(),
                        "flow violates invariants against its own snapshot \
                         (epoch {last_epoch}): {report:?}"
                    );
                    solved += 1;
                    if done.load(Ordering::SeqCst) {
                        return (solved, last_epoch);
                    }
                }
            })
        })
        .collect();

    // The mutator: QoS-flap a source out-link on most ticks, fail a
    // service-4 instance (forcing a full renumbering rebuild) on every
    // tenth while any remain.
    let spare = ServiceId::new(4);
    for tick in 0..MUTATIONS {
        let snapshot = world.snapshot();
        let overlay = snapshot.overlay();
        let victim = if tick % 10 == 9 {
            overlay
                .instances_of(spare)
                .first()
                .map(|&n| overlay.instance(n))
        } else {
            None
        };
        let mutation = match victim {
            Some(instance) => Mutation::FailInstance { instance },
            None => {
                let link = overlay
                    .graph()
                    .out_edges(snapshot.source_node())
                    .next()
                    .expect("the source keeps an out-link");
                let congested = tick % 2 == 0;
                Mutation::SetLinkQos {
                    from: overlay.instance(link.from),
                    to: overlay.instance(link.to),
                    bandwidth_kbps: if congested { 64 } else { 512 },
                    latency_us: if congested { 9_000 } else { 2_000 },
                }
            }
        };
        world.apply(&mutation).expect("churn mutations must apply");
    }
    done.store(true, Ordering::SeqCst);

    let mut total_solves = 0u64;
    for handle in solvers {
        let (solved, last_epoch) = handle.join().expect("solver thread must not panic");
        assert!(solved >= 1, "every solver must complete at least one solve");
        assert!(
            last_epoch <= MUTATIONS,
            "observed epoch {last_epoch} beyond the {MUTATIONS} applied"
        );
        total_solves += solved;
    }
    assert_eq!(world.epoch(), MUTATIONS, "one epoch per applied mutation");
    assert!(total_solves >= SOLVERS as u64);
}
