//! Server counters and request-latency percentiles.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// How many recent request latencies the percentile window keeps. Old
/// samples are overwritten ring-buffer style, so percentiles track recent
/// behaviour on a long-lived server instead of averaging over its lifetime.
const LATENCY_WINDOW: usize = 4096;

/// A point-in-time copy of the server's counters, as carried on the wire.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Federate requests answered with a flow.
    pub served: u64,
    /// Requests shed by admission control (`Overloaded`).
    pub shed: u64,
    /// Admitted requests that failed (parse error, unsatisfiable, …).
    pub failed: u64,
    /// Federates served straight from the snapshot's requirement-keyed
    /// solve cache (after load revalidation on the residual path) — no
    /// solver ran.
    pub cache_hits: u64,
    /// Federates that found no cached solve for their key and ran cold.
    pub cache_misses: u64,
    /// Cached solves found but rejected because the flow no longer fit
    /// residual capacity under the live load plane; the request fell
    /// through to a cold solve. Disjoint from both hits and misses.
    pub cache_revalidation_fails: u64,
    /// Live shared service forests (gauge: tenant groups attached to one
    /// shared instance set).
    pub forests: u64,
    /// Live sessions attached to some forest (gauge; `sessions -
    /// forest_tenants` federated privately).
    pub forest_tenants: u64,
    /// Solves that reused the snapshot's already-built `HopMatrix` (its own
    /// first touch, or one carried forward from a QoS-only predecessor).
    pub hop_cache_hits: u64,
    /// Solves that performed an epoch's first-touch `HopMatrix` build.
    pub hop_cache_misses: u64,
    /// Federate answers discarded as `Stale`: the solve raced a mutation
    /// and its snapshot epoch was no longer current at session-open time.
    pub stale: u64,
    /// Current topology epoch.
    pub epoch: u64,
    /// Live sessions held by the server.
    pub sessions: u64,
    /// Median request latency over the recent window, microseconds.
    pub latency_p50_us: u64,
    /// 90th-percentile request latency, microseconds.
    pub latency_p90_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub latency_p99_us: u64,
    /// Routing-table rebuilds/patches triggered by mutations.
    pub rebuilds: u64,
    /// Total wall-clock spent in those rebuilds, microseconds.
    pub rebuild_us_total: u64,
    /// Source trees recomputed across all rebuilds (incremental patches
    /// recompute far fewer than `rebuilds * instances`).
    pub trees_recomputed: u64,
    /// Malformed frames answered and degraded (oversized prefix, torn
    /// frame, non-JSON body). A peer problem, never a worker problem.
    pub wire_errors: u64,
    /// Model-invariant violations found by the flow-graph auditor
    /// (`serve --audit`); 0 when auditing is off or every answer checked out.
    pub audit_violations: u64,
    /// Sessions migrated to cheaper paths by rebalancer sweeps.
    pub migrations: u64,
    /// Rebalancer movers that failed to re-solve or did not improve the
    /// world and were left on their original paths.
    pub migration_failures: u64,
    /// The worst per-link utilization at the last reading, permille
    /// (1000 = a link exactly at capacity).
    pub max_link_utilization_permille: u64,
    /// Federates that failed against the residual view — the demand did not
    /// fit into what live sessions left free (`serve` without
    /// `--no-residual`).
    pub residual_rejects: u64,
    /// Open client connections (gauge), across both connection planes.
    pub connections_open: u64,
    /// Request frames admitted to the worker pool whose responses have not
    /// yet been handed back (gauge). Pipelining makes this exceed the
    /// connection count; inline control requests never appear here.
    pub frames_in_flight: u64,
    /// Times a reactor thread woke from its poll wait (readiness, a worker
    /// completion, or an idle tick). Zero under `--reactor-threads 0`.
    pub reactor_wakeups: u64,
    /// Times a connection crossed its write high-water mark and had its
    /// read interest parked until the buffer drained.
    pub backpressure_pauses: u64,
    /// Bytes currently staged in per-connection write buffers (gauge).
    /// Backpressure bounds this per connection at roughly the high-water
    /// mark plus one frame.
    pub write_buffered_bytes: u64,
}

/// Shared, interior-mutable counters. Workers record; any connection thread
/// snapshots.
#[derive(Debug, Default)]
pub struct Metrics {
    served: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_revalidation_fails: AtomicU64,
    forests: AtomicU64,
    forest_tenants: AtomicU64,
    hop_cache_hits: AtomicU64,
    hop_cache_misses: AtomicU64,
    stale: AtomicU64,
    rebuilds: AtomicU64,
    rebuild_us_total: AtomicU64,
    trees_recomputed: AtomicU64,
    wire_errors: AtomicU64,
    audit_violations: AtomicU64,
    migrations: AtomicU64,
    migration_failures: AtomicU64,
    max_link_utilization_permille: AtomicU64,
    residual_rejects: AtomicU64,
    connections_open: AtomicU64,
    frames_in_flight: AtomicU64,
    reactor_wakeups: AtomicU64,
    backpressure_pauses: AtomicU64,
    write_buffered_bytes: AtomicU64,
    latencies_us: Mutex<LatencyWindow>,
}

#[derive(Debug, Default)]
struct LatencyWindow {
    samples: Vec<u64>,
    next: usize,
}

impl Metrics {
    /// One request served successfully.
    pub fn served(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// One request shed by admission control.
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One admitted request failed.
    pub fn failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One federate served from the requirement-keyed solve cache.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One federate found no cached solve and ran cold.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One cached solve failed load revalidation and fell through cold.
    pub fn cache_revalidation_fail(&self) {
        self.cache_revalidation_fails
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the current forest census (gauges: each reading replaces
    /// the last).
    pub fn set_forests(&self, forests: u64, tenants: u64) {
        self.forests.store(forests, Ordering::Relaxed);
        self.forest_tenants.store(tenants, Ordering::Relaxed);
    }

    /// One solve reused the shared hop matrix.
    pub fn hop_cache_hit(&self) {
        self.hop_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One solve had to build the hop matrix.
    pub fn hop_cache_miss(&self) {
        self.hop_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One federate answer was discarded because a mutation raced the solve.
    pub fn stale(&self) {
        self.stale.fetch_add(1, Ordering::Relaxed);
    }

    /// One routing-table rebuild or patch: its wall-clock cost and how many
    /// source trees it actually recomputed.
    pub fn rebuild(&self, us: u64, trees: u64) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.rebuild_us_total.fetch_add(us, Ordering::Relaxed);
        self.trees_recomputed.fetch_add(trees, Ordering::Relaxed);
    }

    /// One malformed frame was answered and its connection degraded.
    pub fn wire_error(&self) {
        self.wire_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// The auditor found `count` invariant violations in one answer.
    pub fn audit_violations(&self, count: u64) {
        self.audit_violations.fetch_add(count, Ordering::Relaxed);
    }

    /// One session migrated by a rebalancer sweep.
    pub fn migration(&self) {
        self.migrations.fetch_add(1, Ordering::Relaxed);
    }

    /// One mover failed to re-solve (or did not improve the world).
    pub fn migration_failure(&self) {
        self.migration_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the latest worst-link utilization reading (a gauge, not a
    /// counter: each reading replaces the last).
    pub fn set_max_link_utilization(&self, permille: u64) {
        self.max_link_utilization_permille
            .store(permille, Ordering::Relaxed);
    }

    /// One federate failed against the residual view.
    pub fn residual_reject(&self) {
        self.residual_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// The current open-connection gauge, for cap checks on the accept path
    /// (a full [`Metrics::snapshot`] sorts the latency window — too heavy
    /// per accept).
    pub(crate) fn connections_open_now(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// One client connection opened (gauge up).
    pub fn conn_opened(&self) {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// One client connection closed (gauge down).
    pub fn conn_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// One request frame was admitted to the worker pool (gauge up).
    pub fn frame_dispatched(&self) {
        self.frames_in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// One admitted frame's response came back (gauge down).
    pub fn frame_completed(&self) {
        self.frames_in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// One reactor poll wait returned.
    pub fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection crossed its write high-water mark and parked reads.
    pub fn backpressure_pause(&self) {
        self.backpressure_pauses.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` bytes were staged into a connection's write buffer (gauge up).
    pub fn write_buffered(&self, n: u64) {
        self.write_buffered_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// `n` staged bytes were flushed to (or died with) a socket (gauge down).
    pub fn write_drained(&self, n: u64) {
        self.write_buffered_bytes.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records one request's end-to-end service latency.
    pub fn record_latency_us(&self, us: u64) {
        let mut w = self.latencies_us.lock();
        if w.samples.len() < LATENCY_WINDOW {
            w.samples.push(us);
        } else {
            let i = w.next;
            w.samples[i] = us;
        }
        w.next = (w.next + 1) % LATENCY_WINDOW;
    }

    /// Snapshots every counter; `epoch` and `sessions` come from the world
    /// and session store the caller holds.
    pub fn snapshot(&self, epoch: u64, sessions: u64) -> StatsSnapshot {
        let mut sorted = self.latencies_us.lock().samples.clone();
        sorted.sort_unstable();
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_revalidation_fails: self.cache_revalidation_fails.load(Ordering::Relaxed),
            forests: self.forests.load(Ordering::Relaxed),
            forest_tenants: self.forest_tenants.load(Ordering::Relaxed),
            hop_cache_hits: self.hop_cache_hits.load(Ordering::Relaxed),
            hop_cache_misses: self.hop_cache_misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            epoch,
            sessions,
            latency_p50_us: percentile(&sorted, 50),
            latency_p90_us: percentile(&sorted, 90),
            latency_p99_us: percentile(&sorted, 99),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            rebuild_us_total: self.rebuild_us_total.load(Ordering::Relaxed),
            trees_recomputed: self.trees_recomputed.load(Ordering::Relaxed),
            wire_errors: self.wire_errors.load(Ordering::Relaxed),
            audit_violations: self.audit_violations.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            migration_failures: self.migration_failures.load(Ordering::Relaxed),
            max_link_utilization_permille: self
                .max_link_utilization_permille
                .load(Ordering::Relaxed),
            residual_rejects: self.residual_rejects.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            frames_in_flight: self.frames_in_flight.load(Ordering::Relaxed),
            reactor_wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Ordering::Relaxed),
            write_buffered_bytes: self.write_buffered_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Nearest-rank percentile over an already sorted slice; 0 when empty.
fn percentile(sorted: &[u64], pct: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct as usize * (sorted.len() - 1) + 50) / 100;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_the_window() {
        let m = Metrics::default();
        for us in 1..=100 {
            m.record_latency_us(us);
        }
        m.rebuild(120, 3);
        m.rebuild(80, 1);
        m.migration();
        m.migration();
        m.migration_failure();
        m.residual_reject();
        m.set_max_link_utilization(1400);
        m.set_max_link_utilization(450); // a gauge: each reading replaces
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.cache_revalidation_fail();
        m.hop_cache_hit();
        m.hop_cache_miss();
        m.set_forests(9, 90);
        m.set_forests(2, 5); // gauges replace, never accumulate
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.frame_dispatched();
        m.frame_dispatched();
        m.frame_completed();
        m.reactor_wakeup();
        m.backpressure_pause();
        m.write_buffered(100);
        m.write_drained(60);
        let s = m.snapshot(3, 7);
        assert_eq!(s.connections_open, 1);
        assert_eq!(s.frames_in_flight, 1);
        assert_eq!(s.reactor_wakeups, 1);
        assert_eq!(s.backpressure_pauses, 1);
        assert_eq!(s.write_buffered_bytes, 40);
        assert_eq!(s.cache_hits, 2);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_revalidation_fails, 1);
        assert_eq!(s.hop_cache_hits, 1);
        assert_eq!(s.hop_cache_misses, 1);
        assert_eq!(s.forests, 2);
        assert_eq!(s.forest_tenants, 5);
        assert_eq!(s.migrations, 2);
        assert_eq!(s.migration_failures, 1);
        assert_eq!(s.residual_rejects, 1);
        assert_eq!(s.max_link_utilization_permille, 450);
        assert_eq!(s.epoch, 3);
        assert_eq!(s.sessions, 7);
        assert_eq!(s.rebuilds, 2);
        assert_eq!(s.rebuild_us_total, 200);
        assert_eq!(s.trees_recomputed, 4);
        assert_eq!(s.latency_p50_us, 51); // round-half-up nearest rank
        assert_eq!(s.latency_p90_us, 90);
        assert_eq!(s.latency_p99_us, 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[42], 99), 42);
    }

    #[test]
    fn window_overwrites_oldest_samples() {
        let m = Metrics::default();
        for _ in 0..LATENCY_WINDOW {
            m.record_latency_us(1_000_000);
        }
        // A full window of fast requests displaces the slow prefix.
        for _ in 0..LATENCY_WINDOW {
            m.record_latency_us(10);
        }
        let s = m.snapshot(0, 0);
        assert_eq!(s.latency_p99_us, 10);
    }
}
