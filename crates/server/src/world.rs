//! The server's world: a mutator that grows a chain of immutable snapshots.
//!
//! A [`World`] no longer *is* the topology — it is the thing that builds the
//! next [`WorldSnapshot`] and publishes it through a shared [`Snap`] cell.
//! Readers never touch the `World` (or any lock it holds): they
//! [`Snap::load`] the current snapshot and solve against it. Mutations
//! assemble the successor epoch copy-on-write — a patched clone of the
//! overlay and a routing table derived from the predecessor's — entirely
//! off the published cell, then swap one pointer. The epoch is carried by
//! the snapshots themselves: 0 at birth, +1 per applied mutation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sflow_core::fixtures::Fixture;
use sflow_core::OwnedFederationContext;
use sflow_net::{ServiceInstance, UnderlyingNetwork};
use sflow_routing::{Bandwidth, DirtyLinks, Latency, Qos};

use crate::snapshot::{Snap, WorldSnapshot};
use crate::Mutation;

/// A mutation that could not be applied; the published snapshot is left
/// untouched and the epoch is not bumped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorldError {
    /// The named instance is not (or no longer) in the overlay.
    UnknownInstance(ServiceInstance),
    /// No service link exists between the two instances.
    NoSuchLink(ServiceInstance, ServiceInstance),
    /// Refusing to fail the pinned source instance — it is the consumer's
    /// entry point, and every context needs it.
    SourceUnfailable(ServiceInstance),
    /// Only link-QoS mutations can ride in a batch; structural mutations
    /// renumber the overlay and must go through [`World::apply`] alone.
    UnbatchableMutation,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::UnknownInstance(i) => write!(f, "unknown instance {i}"),
            WorldError::NoSuchLink(a, b) => write!(f, "no service link {a} -> {b}"),
            WorldError::SourceUnfailable(i) => {
                write!(f, "cannot fail the source instance {i}")
            }
            WorldError::UnbatchableMutation => {
                write!(f, "only link-QoS mutations can be batched")
            }
        }
    }
}

impl std::error::Error for WorldError {}

/// How much routing work one applied mutation cost.
///
/// `SetLinkQos` goes through the incremental
/// [`AllPairs::patched`](sflow_routing::AllPairs::patched) path, so
/// `trees_recomputed` is typically far below `trees_total`; instance
/// failures renumber the overlay and force a full parallel rebuild.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Wall-clock spent rebuilding or patching the routing table.
    pub duration: Duration,
    /// Source trees actually recomputed.
    pub trees_recomputed: u64,
    /// Source trees in the table (== overlay instances).
    pub trees_total: u64,
    /// `true` if the whole table was rebuilt (structural mutation).
    pub full_rebuild: bool,
}

/// The mutator side of a snapshot-published world.
///
/// Owns the [`Snap`] cell (handed to readers via [`World::handle`]) and the
/// underlying physical network; everything topological lives in the
/// currently published [`WorldSnapshot`].
#[derive(Debug)]
pub struct World {
    net: UnderlyingNetwork,
    snap: Arc<Snap>,
    /// Worker threads for routing rebuilds/patches; 0 = auto-size.
    route_workers: usize,
}

impl World {
    /// Adopts a fixture as the world, publishing its topology at epoch 0
    /// (auto-sized routing pool).
    pub fn new(fixture: Fixture) -> Self {
        let first = WorldSnapshot::new(
            Arc::new(fixture.overlay),
            Arc::new(fixture.all_pairs),
            fixture.source,
            0,
        );
        World {
            net: fixture.net,
            snap: Arc::new(Snap::new(Arc::new(first))),
            route_workers: 0,
        }
    }

    /// Sets the routing worker-pool size used by rebuilds and patches
    /// (`0` = auto-size from `available_parallelism`).
    pub fn set_route_workers(&mut self, workers: usize) {
        self.route_workers = workers;
    }

    /// The publication cell readers should hold: `load` it for the current
    /// snapshot without ever coordinating with mutations.
    pub fn handle(&self) -> Arc<Snap> {
        Arc::clone(&self.snap)
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<WorldSnapshot> {
        self.snap.load()
    }

    /// An owned federation context over the current snapshot.
    pub fn context(&self) -> OwnedFederationContext {
        self.snapshot().context()
    }

    /// The underlying physical network (unchanged by overlay mutations).
    pub fn net(&self) -> &UnderlyingNetwork {
        &self.net
    }

    /// The pinned source instance (survives every mutation).
    pub fn source(&self) -> ServiceInstance {
        self.snapshot().source()
    }

    /// The topology epoch: 0 at birth, +1 per applied mutation.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch()
    }

    /// Applies one mutation: builds the successor snapshot copy-on-write —
    /// a patched overlay clone plus a routing table derived from the
    /// predecessor's ([`AllPairs::patched`](sflow_routing::AllPairs::patched)
    /// for link-QoS changes, full parallel rebuild for structural ones) —
    /// and publishes it with a
    /// single pointer swap. Readers keep solving against the predecessor
    /// for as long as they hold it; the epoch bump is visible from the
    /// moment of the swap. QoS-only successors adopt the predecessor's hop
    /// matrix (hop counts are structural), so the per-epoch cache survives
    /// non-structural churn for free.
    ///
    /// # Errors
    ///
    /// Returns a [`WorldError`] (and publishes nothing) if the mutation
    /// names an unknown instance or link, or would fail the source.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<RebuildStats, WorldError> {
        let prev = self.snap.load();
        let (next, stats) = match *mutation {
            Mutation::SetLinkQos {
                from,
                to,
                bandwidth_kbps,
                latency_us,
            } => {
                let f = prev
                    .overlay()
                    .node_of(from)
                    .ok_or(WorldError::UnknownInstance(from))?;
                let t = prev
                    .overlay()
                    .node_of(to)
                    .ok_or(WorldError::UnknownInstance(to))?;
                let qos = Qos::new(
                    Bandwidth::kbps(bandwidth_kbps),
                    Latency::from_micros(latency_us),
                );
                let (overlay, change) = prev
                    .overlay()
                    .with_link_qos(f, t, qos)
                    .ok_or(WorldError::NoSuchLink(from, to))?;
                // The successor keeps the node set, so its table derives
                // incrementally from the predecessor's: only trees the
                // change can affect are recomputed, the rest are shared
                // work carried across the epoch.
                let started = Instant::now();
                let (table, patched) =
                    prev.all_pairs()
                        .patched_with(overlay.graph(), &[change], self.route_workers);
                let stats = RebuildStats {
                    duration: started.elapsed(),
                    trees_recomputed: patched.trees_recomputed as u64,
                    trees_total: patched.trees_total as u64,
                    full_rebuild: patched.full_rebuild,
                };
                // QoS changes keep the node and edge numbering, so the
                // change's endpoints are valid in the successor overlay.
                let dirty = DirtyLinks::of(overlay.graph(), std::slice::from_ref(&change));
                let next = WorldSnapshot::new(
                    Arc::new(overlay),
                    Arc::new(table),
                    prev.source_node(),
                    prev.epoch() + 1,
                );
                // QoS changes do not move nodes or edges, so the hop
                // matrix (pure structure) is carried forward verbatim.
                if let Some(matrix) = prev.cached_hop_matrix() {
                    next.adopt_hop_matrix(matrix);
                }
                // Cached solves whose paths avoid every dirtied link kept
                // their exact QoS across the patch, so the successor adopts
                // them; the rest start cold.
                next.adopt_clean_solves(&prev, &dirty);
                (next, stats)
            }
            Mutation::FailInstance { instance } => {
                if instance == prev.source() {
                    return Err(WorldError::SourceUnfailable(instance));
                }
                if prev.overlay().node_of(instance).is_none() {
                    return Err(WorldError::UnknownInstance(instance));
                }
                // Failure rebuilds the overlay and renumbers its nodes; the
                // source must be re-resolved by identity, the routing table
                // rebuilt from scratch (on the worker pool), and the hop
                // matrix left for the successor's first touch.
                let overlay = prev.overlay().without_instances(&[instance]);
                let source_node = overlay
                    .node_of(prev.source())
                    // audit:allow(no-unwrap): failing a non-source instance cannot remove the source
                    .expect("source survives non-source failure");
                let started = Instant::now();
                let table = overlay.all_pairs_parallel_with(self.route_workers);
                let trees = table.len() as u64;
                let stats = RebuildStats {
                    duration: started.elapsed(),
                    trees_recomputed: trees,
                    trees_total: trees,
                    full_rebuild: true,
                };
                let next = WorldSnapshot::new(
                    Arc::new(overlay),
                    Arc::new(table),
                    source_node,
                    prev.epoch() + 1,
                );
                (next, stats)
            }
        };
        self.snap.store(Arc::new(next));
        Ok(stats)
    }

    /// Applies a batch of link-QoS mutations as *one* epoch: the successor
    /// overlay is cloned once, every change lands on the clone, and a
    /// single incremental patch derives the routing table from the
    /// predecessor's. Readers observe the whole event or none of it —
    /// there is no published intermediate where half the batch has landed.
    ///
    /// An empty batch publishes nothing and bumps no epoch.
    ///
    /// # Errors
    ///
    /// Returns a [`WorldError`] (and publishes nothing) on the first
    /// mutation that names an unknown instance or link, or that is not a
    /// [`Mutation::SetLinkQos`] — structural mutations renumber the
    /// overlay and must go through [`World::apply`] alone.
    pub fn apply_batch(&mut self, mutations: &[Mutation]) -> Result<RebuildStats, WorldError> {
        if mutations.is_empty() {
            return Ok(RebuildStats::default());
        }
        let prev = self.snap.load();
        let mut overlay = (*prev.overlay()).clone();
        let mut changes = Vec::with_capacity(mutations.len());
        for mutation in mutations {
            match *mutation {
                Mutation::SetLinkQos {
                    from,
                    to,
                    bandwidth_kbps,
                    latency_us,
                } => {
                    let f = overlay
                        .node_of(from)
                        .ok_or(WorldError::UnknownInstance(from))?;
                    let t = overlay.node_of(to).ok_or(WorldError::UnknownInstance(to))?;
                    let qos = Qos::new(
                        Bandwidth::kbps(bandwidth_kbps),
                        Latency::from_micros(latency_us),
                    );
                    let change = overlay
                        .update_link_qos(f, t, qos)
                        .ok_or(WorldError::NoSuchLink(from, to))?;
                    changes.push(change);
                }
                Mutation::FailInstance { .. } => return Err(WorldError::UnbatchableMutation),
            }
        }
        let started = Instant::now();
        let (table, patched) =
            prev.all_pairs()
                .patched_with(overlay.graph(), &changes, self.route_workers);
        let stats = RebuildStats {
            duration: started.elapsed(),
            trees_recomputed: patched.trees_recomputed as u64,
            trees_total: patched.trees_total as u64,
            full_rebuild: patched.full_rebuild,
        };
        let dirty = DirtyLinks::of(overlay.graph(), &changes);
        let next = WorldSnapshot::new(
            Arc::new(overlay),
            Arc::new(table),
            prev.source_node(),
            prev.epoch() + 1,
        );
        if let Some(matrix) = prev.cached_hop_matrix() {
            next.adopt_hop_matrix(matrix);
        }
        // Solve-cache entries untouched by the whole batch survive it.
        next.adopt_clean_solves(&prev, &dirty);
        self.snap.store(Arc::new(next));
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sflow_core::algorithms::{FederationAlgorithm, SflowAlgorithm};
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement};
    use sflow_net::{HostId, ServiceId};

    fn inst(s: u32, h: u32) -> ServiceInstance {
        ServiceInstance::new(ServiceId::new(s), HostId::new(h))
    }

    #[test]
    fn mutations_bump_the_epoch_and_keep_contexts_solvable() {
        let mut w = World::new(diamond_fixture());
        assert_eq!(w.epoch(), 0);
        let req = diamond_requirement();
        let before = SflowAlgorithm::default()
            .federate(&w.context(), &req)
            .unwrap();

        // Fail the instance the sFlow solution routes through; the solve
        // must still succeed over the degraded world.
        let &victim = before
            .instances()
            .values()
            .find(|i| **i != w.source())
            .unwrap();
        w.apply(&Mutation::FailInstance { instance: victim })
            .unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(w.snapshot().overlay().node_of(victim).is_none());
        let after = SflowAlgorithm::default()
            .federate(&w.context(), &req)
            .unwrap();
        assert!(after.bandwidth() <= before.bandwidth());
    }

    #[test]
    fn bad_mutations_leave_the_world_untouched() {
        let mut w = World::new(diamond_fixture());
        let source = w.source();
        assert_eq!(
            w.apply(&Mutation::FailInstance { instance: source }),
            Err(WorldError::SourceUnfailable(source))
        );
        assert_eq!(
            w.apply(&Mutation::FailInstance {
                instance: inst(9, 9)
            }),
            Err(WorldError::UnknownInstance(inst(9, 9)))
        );
        assert_eq!(w.epoch(), 0);
    }

    #[test]
    fn set_link_qos_requires_an_existing_link() {
        let mut w = World::new(diamond_fixture());
        // The diamond's source feeds both s1 and s2; pick a real link.
        let ctx = w.context();
        let overlay = ctx.overlay();
        let from_node = ctx.source_instance();
        let link = overlay.graph().out_edges(from_node).next().unwrap();
        let from = overlay.instance(link.from);
        let to = overlay.instance(link.to);
        drop(ctx);
        w.apply(&Mutation::SetLinkQos {
            from,
            to,
            bandwidth_kbps: 1,
            latency_us: 99,
        })
        .unwrap();
        assert_eq!(w.epoch(), 1);
        // Reverse direction does not exist in the diamond.
        assert_eq!(
            w.apply(&Mutation::SetLinkQos {
                from: to,
                to: from,
                bandwidth_kbps: 1,
                latency_us: 1,
            }),
            Err(WorldError::NoSuchLink(to, from))
        );
    }

    #[test]
    fn readers_holding_the_old_snapshot_survive_a_mutation() {
        let mut w = World::new(diamond_fixture());
        let held = w.snapshot();
        let req = diamond_requirement();
        let before = SflowAlgorithm::default()
            .federate(&held.context(), &req)
            .unwrap();

        let &victim = before
            .instances()
            .values()
            .find(|i| **i != w.source())
            .unwrap();
        w.apply(&Mutation::FailInstance { instance: victim })
            .unwrap();

        // The held snapshot is the untouched epoch-0 world: same solve,
        // same answer — even though the published world moved on.
        assert_eq!(held.epoch(), 0);
        assert!(held.overlay().node_of(victim).is_some());
        let again = SflowAlgorithm::default()
            .federate(&held.context(), &req)
            .unwrap();
        assert_eq!(again.bandwidth(), before.bandwidth());
        assert_eq!(w.snapshot().epoch(), 1);
    }

    #[test]
    fn a_batch_of_qos_mutations_is_one_epoch() {
        let mut w = World::new(diamond_fixture());
        let first = w.snapshot();
        let (matrix, _) = first.hop_matrix_tracked();
        let ctx = first.context();
        let overlay = ctx.overlay();
        let batch: Vec<Mutation> = overlay
            .graph()
            .out_edges(ctx.source_instance())
            .map(|link| Mutation::SetLinkQos {
                from: overlay.instance(link.from),
                to: overlay.instance(link.to),
                bandwidth_kbps: 48,
                latency_us: 7_000,
            })
            .collect();
        assert!(batch.len() >= 2, "the diamond source fans out");
        drop(ctx);

        let stats = w.apply_batch(&batch).unwrap();
        assert_eq!(w.epoch(), 1, "the whole batch is one epoch");
        assert!(!stats.full_rebuild);
        let next = w.snapshot();
        let carried = next
            .cached_hop_matrix()
            .expect("QoS batch keeps the hop matrix");
        assert!(Arc::ptr_eq(&carried, &matrix));

        // A structural mutation poisons the batch and publishes nothing.
        let victim = next
            .overlay()
            .graph()
            .node_ids()
            .map(|n| next.overlay().instance(n))
            .find(|i| *i != w.source())
            .unwrap();
        assert_eq!(
            w.apply_batch(&[Mutation::FailInstance { instance: victim }]),
            Err(WorldError::UnbatchableMutation)
        );
        assert_eq!(w.epoch(), 1);
        assert_eq!(w.apply_batch(&[]), Ok(RebuildStats::default()));
        assert_eq!(w.epoch(), 1, "an empty batch publishes nothing");
    }

    #[test]
    fn qos_mutations_carry_the_hop_matrix_forward_and_failures_do_not() {
        let mut w = World::new(diamond_fixture());
        let first = w.snapshot();
        let (matrix, built) = first.hop_matrix_tracked();
        assert!(built);

        let ctx = first.context();
        let link = ctx
            .overlay()
            .graph()
            .out_edges(ctx.source_instance())
            .next()
            .unwrap();
        let from = ctx.overlay().instance(link.from);
        let to = ctx.overlay().instance(link.to);
        w.apply(&Mutation::SetLinkQos {
            from,
            to,
            bandwidth_kbps: 2,
            latency_us: 40,
        })
        .unwrap();
        let qos_next = w.snapshot();
        let carried = qos_next.cached_hop_matrix().expect("carried forward");
        assert!(Arc::ptr_eq(&carried, &matrix), "QoS keeps the hop matrix");

        let victim = qos_next
            .overlay()
            .graph()
            .node_ids()
            .map(|n| qos_next.overlay().instance(n))
            .find(|i| *i != w.source())
            .unwrap();
        w.apply(&Mutation::FailInstance { instance: victim })
            .unwrap();
        assert!(
            w.snapshot().cached_hop_matrix().is_none(),
            "structural mutations start the hop cache cold"
        );
    }
}
