//! The server's shared world: topology, routing table, topology epoch.
//!
//! A [`World`] owns everything a [`FederationContext`] borrows (like
//! [`Fixture`], which it is built from) plus a monotonically increasing
//! *topology epoch*. Mutations rebuild the derived routing artifacts and bump
//! the epoch; epoch-tagged caches elsewhere (the server's shared
//! [`HopMatrix`](sflow_core::baseline::HopMatrix)) use the bump as their
//! invalidation signal.

use std::time::{Duration, Instant};

use sflow_core::fixtures::Fixture;
use sflow_core::FederationContext;
use sflow_graph::NodeIx;
use sflow_net::{OverlayGraph, ServiceInstance, UnderlyingNetwork};
use sflow_routing::{AllPairs, Bandwidth, Latency, Qos};

use crate::Mutation;

/// A mutation that could not be applied; the world is left untouched and the
/// epoch is not bumped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorldError {
    /// The named instance is not (or no longer) in the overlay.
    UnknownInstance(ServiceInstance),
    /// No service link exists between the two instances.
    NoSuchLink(ServiceInstance, ServiceInstance),
    /// Refusing to fail the pinned source instance — it is the consumer's
    /// entry point, and every context needs it.
    SourceUnfailable(ServiceInstance),
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::UnknownInstance(i) => write!(f, "unknown instance {i}"),
            WorldError::NoSuchLink(a, b) => write!(f, "no service link {a} -> {b}"),
            WorldError::SourceUnfailable(i) => {
                write!(f, "cannot fail the source instance {i}")
            }
        }
    }
}

impl std::error::Error for WorldError {}

/// How much routing work one applied mutation cost.
///
/// `SetLinkQos` goes through the incremental
/// [`AllPairs::patch`](sflow_routing::AllPairs::patch) path, so
/// `trees_recomputed` is typically far below `trees_total`; instance
/// failures renumber the overlay and force a full parallel rebuild.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Wall-clock spent rebuilding or patching the routing table.
    pub duration: Duration,
    /// Source trees actually recomputed.
    pub trees_recomputed: u64,
    /// Source trees in the table (== overlay instances).
    pub trees_total: u64,
    /// `true` if the whole table was rebuilt (structural mutation).
    pub full_rebuild: bool,
}

/// The shared world a federation server owns.
#[derive(Clone, Debug)]
pub struct World {
    net: UnderlyingNetwork,
    overlay: OverlayGraph,
    all_pairs: AllPairs,
    source: ServiceInstance,
    source_node: NodeIx,
    epoch: u64,
    /// Worker threads for routing rebuilds/patches; 0 = auto-size.
    route_workers: usize,
}

impl World {
    /// Adopts a fixture as the world at epoch 0 (auto-sized routing pool).
    pub fn new(fixture: Fixture) -> Self {
        let source = fixture.overlay.instance(fixture.source);
        World {
            net: fixture.net,
            overlay: fixture.overlay,
            all_pairs: fixture.all_pairs,
            source,
            source_node: fixture.source,
            epoch: 0,
            route_workers: 0,
        }
    }

    /// Sets the routing worker-pool size used by rebuilds and patches
    /// (`0` = auto-size from `available_parallelism`).
    pub fn set_route_workers(&mut self, workers: usize) {
        self.route_workers = workers;
    }

    /// A federation context borrowing this world's current topology.
    pub fn context(&self) -> FederationContext<'_> {
        FederationContext::new(&self.overlay, &self.all_pairs, self.source_node)
    }

    /// The current service overlay.
    pub fn overlay(&self) -> &OverlayGraph {
        &self.overlay
    }

    /// The underlying physical network (unchanged by overlay mutations).
    pub fn net(&self) -> &UnderlyingNetwork {
        &self.net
    }

    /// The pinned source instance (survives every mutation).
    pub fn source(&self) -> ServiceInstance {
        self.source
    }

    /// The topology epoch: 0 at birth, +1 per applied mutation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies one mutation: updates the overlay, repairs the [`AllPairs`]
    /// table (incrementally for link-QoS changes, full parallel rebuild for
    /// structural ones), re-pins the source and bumps the epoch. Returns
    /// how much routing work the mutation cost.
    ///
    /// # Errors
    ///
    /// Returns a [`WorldError`] (and leaves the world untouched) if the
    /// mutation names an unknown instance or link, or would fail the source.
    pub fn apply(&mut self, mutation: &Mutation) -> Result<RebuildStats, WorldError> {
        let stats = match *mutation {
            Mutation::SetLinkQos {
                from,
                to,
                bandwidth_kbps,
                latency_us,
            } => {
                let f = self
                    .overlay
                    .node_of(from)
                    .ok_or(WorldError::UnknownInstance(from))?;
                let t = self
                    .overlay
                    .node_of(to)
                    .ok_or(WorldError::UnknownInstance(to))?;
                let qos = Qos::new(
                    Bandwidth::kbps(bandwidth_kbps),
                    Latency::from_micros(latency_us),
                );
                let change = self
                    .overlay
                    .update_link_qos(f, t, qos)
                    .ok_or(WorldError::NoSuchLink(from, to))?;
                // The overlay kept its node set, so the table can be
                // patched in place: only trees the change can affect are
                // recomputed, the rest are reused across the epoch bump.
                let started = Instant::now();
                let patched =
                    self.all_pairs
                        .patch_with(self.overlay.graph(), &[change], self.route_workers);
                RebuildStats {
                    duration: started.elapsed(),
                    trees_recomputed: patched.trees_recomputed as u64,
                    trees_total: patched.trees_total as u64,
                    full_rebuild: patched.full_rebuild,
                }
            }
            Mutation::FailInstance { instance } => {
                if instance == self.source {
                    return Err(WorldError::SourceUnfailable(instance));
                }
                if self.overlay.node_of(instance).is_none() {
                    return Err(WorldError::UnknownInstance(instance));
                }
                // Failure rebuilds the overlay and renumbers its nodes; the
                // source must be re-resolved by identity and the routing
                // table rebuilt from scratch (on the worker pool).
                self.overlay = self.overlay.without_instances(&[instance]);
                self.source_node = self
                    .overlay
                    .node_of(self.source)
                    .expect("source survives non-source failure"); // audit:allow(no-unwrap)
                let started = Instant::now();
                self.all_pairs = self.overlay.all_pairs_parallel_with(self.route_workers);
                let trees = self.all_pairs.len() as u64;
                RebuildStats {
                    duration: started.elapsed(),
                    trees_recomputed: trees,
                    trees_total: trees,
                    full_rebuild: true,
                }
            }
        };
        self.epoch += 1;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sflow_core::algorithms::{FederationAlgorithm, SflowAlgorithm};
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement};
    use sflow_net::{HostId, ServiceId};

    fn inst(s: u32, h: u32) -> ServiceInstance {
        ServiceInstance::new(ServiceId::new(s), HostId::new(h))
    }

    #[test]
    fn mutations_bump_the_epoch_and_keep_contexts_solvable() {
        let mut w = World::new(diamond_fixture());
        assert_eq!(w.epoch(), 0);
        let req = diamond_requirement();
        let before = SflowAlgorithm::default()
            .federate(&w.context(), &req)
            .unwrap();

        // Fail the instance the sFlow solution routes through; the solve
        // must still succeed over the degraded world.
        let &victim = before
            .instances()
            .values()
            .find(|i| **i != w.source())
            .unwrap();
        w.apply(&Mutation::FailInstance { instance: victim })
            .unwrap();
        assert_eq!(w.epoch(), 1);
        assert!(w.overlay().node_of(victim).is_none());
        let after = SflowAlgorithm::default()
            .federate(&w.context(), &req)
            .unwrap();
        assert!(after.bandwidth() <= before.bandwidth());
    }

    #[test]
    fn bad_mutations_leave_the_world_untouched() {
        let mut w = World::new(diamond_fixture());
        let source = w.source();
        assert_eq!(
            w.apply(&Mutation::FailInstance { instance: source }),
            Err(WorldError::SourceUnfailable(source))
        );
        assert_eq!(
            w.apply(&Mutation::FailInstance {
                instance: inst(9, 9)
            }),
            Err(WorldError::UnknownInstance(inst(9, 9)))
        );
        assert_eq!(w.epoch(), 0);
    }

    #[test]
    fn set_link_qos_requires_an_existing_link() {
        let mut w = World::new(diamond_fixture());
        // The diamond's source feeds both s1 and s2; pick a real link.
        let ctx = w.context();
        let overlay = ctx.overlay();
        let from_node = ctx.source_instance();
        let link = overlay.graph().out_edges(from_node).next().unwrap();
        let from = overlay.instance(link.from);
        let to = overlay.instance(link.to);
        drop(ctx);
        w.apply(&Mutation::SetLinkQos {
            from,
            to,
            bandwidth_kbps: 1,
            latency_us: 99,
        })
        .unwrap();
        assert_eq!(w.epoch(), 1);
        // Reverse direction does not exist in the diamond.
        assert_eq!(
            w.apply(&Mutation::SetLinkQos {
                from: to,
                to: from,
                bandwidth_kbps: 1,
                latency_us: 1,
            }),
            Err(WorldError::NoSuchLink(to, from))
        );
    }
}
