//! The federation server: connection plane, worker pool, admission queue.
//!
//! Threading model. The **connection plane** — who turns sockets into
//! [`Request`]s and [`Response`]s into bytes — comes in two shapes, selected
//! by [`ServerConfig::reactor_threads`]:
//!
//! * the **reactor** (default, `reactor_threads ≥ 1`): epoll event loops in
//!   [`crate::reactor`] drive a non-blocking listener and every connection;
//!   per-connection state machines parse pipelined frames incrementally and
//!   stage responses in write buffers. One loop serves tens of thousands of
//!   connections.
//! * **thread-per-connection** (`reactor_threads = 0`, the legacy plane and
//!   the `bench_server` baseline): one acceptor thread owns the listener
//!   and spawns a blocking connection thread per client.
//!
//! Either way, a fixed pool of **worker** threads drains a *bounded*
//! crossbeam job queue and runs solves/mutations against the published
//! world snapshot. Requests arrive in [`RequestFrame`] envelopes and
//! responses leave tagged with the same `request_id`; on the reactor plane
//! many frames from one connection may be in flight at once and responses
//! return in completion order, not arrival order.
//!
//! Admission control happens where the connection plane hands a job to the
//! pool: a `try_send` into the bounded queue either enqueues or fails
//! immediately, and a failure is answered with [`Response::Overloaded`] —
//! the request is shed, never buffered. `Stats`, `LoadMap` and `Shutdown`
//! are handled inline on the connection plane (`control_response`) so
//! observability and operability survive overload.
//!
//! Locking: there is none on the solve path. `Federate` loads the current
//! [`WorldSnapshot`] from the [`Snap`] cell
//! (an `Arc` clone) and solves against that immutable epoch with zero shared
//! locks held; the per-epoch hop matrix lives inside the snapshot and is
//! built at most once however many solvers race on it. `Mutate` serializes
//! against other mutations on the world mutex, assembles the successor
//! snapshot off to the side, publishes it with one pointer swap and then
//! repairs sessions. A solve overtaken by a mutation is answered
//! [`Response::Stale`] instead of opening a session solved against a world
//! that no longer exists.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use sflow_core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, ServicePathAlgorithm,
};
use sflow_core::repair::repair;
use sflow_core::validate::FlowGraphAuditor;
use sflow_core::{FederationContext, FlowGraph, ServiceRequirement, Solver};
use sflow_routing::Bandwidth;
use sflow_runtime::duration_us;

use crate::load::{links_of, LinkId, LoadCell, LoadMap, LoadPlane};
use crate::reactor::{self, Reply};
use crate::rebalance;
use crate::snapshot::{Snap, SolveKey, WorldSnapshot};
use crate::stats::Metrics;
use crate::wire::{read_frame, write_frame};
use crate::world::World;
use crate::{
    Algorithm, FlowSummary, LinkLoad, LoadMapSummary, Request, RequestFrame, Response,
    ResponseFrame,
};

/// How a [`serve`] instance is sized and (for tests) slowed down.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue (min 1).
    pub workers: usize,
    /// Capacity of the bounded admission queue; a full queue sheds.
    pub queue_depth: usize,
    /// Hard cap on live sessions; `Federate` beyond it is answered with an
    /// error rather than growing without bound.
    pub max_sessions: usize,
    /// Worker threads for routing-table rebuilds and patches after
    /// mutations; `0` auto-sizes from `available_parallelism`.
    pub route_workers: usize,
    /// Audit every solved or repaired flow graph with
    /// [`FlowGraphAuditor`] and count violations in the server stats
    /// (`serve --audit`). Non-fatal: a violating answer is still served,
    /// but the counter makes it visible.
    pub audit: bool,
    /// Federate against **residual** capacity (`capacity − reserved`)
    /// instead of raw link capacity. On by default; `serve --no-residual`
    /// turns it off — the load ledger still tracks every session, but the
    /// solver goes back to being blind to live load.
    pub residual: bool,
    /// Serve repeated requirements from the per-snapshot solve cache and
    /// attach same-key tenants to shared service forests. On by default;
    /// `serve --no-solve-cache` turns it off — every federate then runs a
    /// cold solve and opens a private session.
    pub solve_cache: bool,
    /// Run a background rebalancer sweep this often. `None` (the default)
    /// starts no thread; [`Request::Rebalance`] still sweeps on demand.
    pub rebalance_interval: Option<Duration>,
    /// A link is *hot* — a rebalancer target — above this utilization, in
    /// permille of raw capacity (900 = 90%).
    pub utilization_threshold_permille: u64,
    /// Reactor (event-loop) threads for the connection plane. The default,
    /// `1`, serves every connection from a single epoll loop; larger values
    /// shard connections round-robin across loops. `0` selects the legacy
    /// thread-per-connection plane (kept as the `bench_server` baseline).
    pub reactor_threads: usize,
    /// Slow-reader backpressure: a connection whose staged response bytes
    /// exceed this mark stops being polled for read until the buffer fully
    /// drains. Bytes; the default is 256 KiB.
    pub write_high_water: usize,
    /// Hard cap on concurrently open connections; the acceptor drops
    /// streams beyond it. `0` auto-sizes: 1024 under thread-per-connection
    /// (threads are the scarce resource), 65536 under the reactor (bounded
    /// only by fds).
    pub max_connections: usize,
    /// Test hook: hold every admitted job this long before solving, so
    /// tests can fill the admission queue deterministically.
    pub debug_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_sessions: 16_384,
            route_workers: 0,
            audit: false,
            residual: true,
            solve_cache: true,
            rebalance_interval: None,
            utilization_threshold_permille: 900,
            reactor_threads: 1,
            write_high_water: 256 * 1024,
            max_connections: 0,
            debug_delay: None,
        }
    }
}

impl ServerConfig {
    /// Resolves [`ServerConfig::max_connections`]' auto value for the
    /// selected connection plane.
    pub(crate) fn effective_max_connections(&self) -> usize {
        if self.max_connections != 0 {
            self.max_connections
        } else if self.reactor_threads == 0 {
            1024
        } else {
            65_536
        }
    }
}

/// A live federation kept by the server for repair after mutations.
pub(crate) struct Session {
    pub(crate) requirement: ServiceRequirement,
    pub(crate) flow: FlowGraph,
    /// The snapshot epoch `flow` was solved (or last repaired) against.
    /// Repair sweeps re-resolve a session against exactly the epoch it was
    /// solved under — a session somehow left behind by an earlier sweep is
    /// dropped rather than silently repaired across a renumbering.
    pub(crate) solved_epoch: u64,
    /// The per-link bandwidth this session reserves in the load plane —
    /// exactly what was booked when it opened (or last repaired/migrated),
    /// so closing it releases exactly what it holds. For a forest tenant
    /// that is the *marginal* reservation: the forest's holder carries the
    /// shared instance set's full booking, every other member carries none
    /// (shared links reserve the `max`, not the `sum`, of the common
    /// streams — and for an exact-key forest every stream is common).
    pub(crate) links: Vec<(LinkId, u64)>,
    /// The shared service forest this session is attached to, if any.
    pub(crate) forest: Option<u64>,
}

/// One shared service forest: N same-key tenants attached to a single
/// shared instance set. Exactly one member — the *holder*, the member
/// whose `Session::links` is non-empty — carries the forest's reservation
/// in the load plane; releasing the holder hands the booking to a
/// surviving member, so the conservation invariant (ledger == Σ session
/// links) holds at every instant without special-casing forests.
pub(crate) struct Forest {
    /// The solve key every member federated under.
    pub(crate) key: SolveKey,
    /// The epoch the shared flow is currently valid at (moves forward when
    /// a mutation's repair sweep carries the forest over).
    pub(crate) epoch: u64,
    /// The shared flow every member is attached to.
    pub(crate) flow: FlowGraph,
    /// Member session ids, in attach order.
    pub(crate) members: Vec<u64>,
}

#[derive(Default)]
pub(crate) struct Sessions {
    pub(crate) next_id: u64,
    pub(crate) live: BTreeMap<u64, Session>,
    pub(crate) next_forest: u64,
    pub(crate) forests: BTreeMap<u64, Forest>,
    /// The live forest currently accepting tenants for a key. An entry can
    /// be superseded (a new forest takes the key after a mutation moved
    /// the old one); superseded forests keep serving their members but
    /// accept no new ones.
    pub(crate) by_key: BTreeMap<SolveKey, u64>,
}

impl Sessions {
    /// Live forest census: `(forests, tenants)` — the `--stats` gauges.
    pub(crate) fn forest_census(&self) -> (u64, u64) {
        let tenants: usize = self.forests.values().map(|f| f.members.len()).sum();
        (self.forests.len() as u64, tenants as u64)
    }
}

/// State shared by every thread of one server instance.
pub(crate) struct Shared {
    pub(crate) addr: SocketAddr,
    pub(crate) config: ServerConfig,
    /// The publication cell readers load snapshots from. Never held — a
    /// load is one `Arc` clone and the solve runs against the clone.
    pub(crate) snap: Arc<Snap>,
    /// The mutator. Only `Mutate` jobs take this lock; the read path never
    /// touches it, so mutations serialize exclusively against each other.
    pub(crate) world: Mutex<World>,
    pub(crate) sessions: Mutex<Sessions>,
    /// The load plane's publication cell — reservations, the residual
    /// overlay and its patched routing table. Published only under the
    /// sessions lock, so the ledger can never drift from the table.
    pub(crate) load: LoadCell,
    /// Live sessions, counted separately from `sessions.live` because a
    /// repair sweep takes the map out of the lock while it re-resolves —
    /// during that window `live.len()` reads 0 even though every swept-out
    /// session is still live from the clients' point of view. Incremented
    /// under the sessions lock when a session opens; decremented only when
    /// a session is truly dropped. Admission and `Stats` read this, never
    /// `live.len()`.
    pub(crate) live_sessions: AtomicUsize,
    pub(crate) metrics: Metrics,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    pub(crate) fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The loopback address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops accepting, drains the workers and joins every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own — i.e. until some client
    /// sends [`Request::Shutdown`]. This is what `sflow serve` does.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it.
        let _ = TcpStream::connect(self.shared.addr);
        let _ = acceptor.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One admitted unit of work plus the route its answer goes back on: a
/// rendezvous channel (thread-per-connection) or a reactor completion
/// ([`Reply`]).
pub(crate) struct Job {
    pub(crate) request: Request,
    pub(crate) reply: Reply,
}

/// Binds a loopback port and starts serving `world`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(world: World, config: &ServerConfig) -> io::Result<ServerHandle> {
    serve_on("127.0.0.1:0", world, config)
}

/// [`serve`] on an explicit address (`"127.0.0.1:0"` picks a free port).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_on(addr: &str, mut world: World, config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    world.set_route_workers(config.route_workers);
    let load = LoadCell::new(Arc::new(LoadPlane::fresh(&world.snapshot())));
    let shared = Arc::new(Shared {
        addr: listener.local_addr()?,
        config: *config,
        snap: world.handle(),
        world: Mutex::new(world),
        sessions: Mutex::new(Sessions::default()),
        load,
        live_sessions: AtomicUsize::new(0),
        metrics: Metrics::default(),
        shutdown: AtomicBool::new(false),
    });
    let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));

    let mut workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let jobs = job_rx.clone();
            thread::spawn(move || worker_loop(&shared, &jobs))
        })
        .collect();
    drop(job_rx);

    // The rebalancer thread, if configured: sweeps on its interval, exits
    // with the shutdown flag, joined with the workers.
    if let Some(interval) = config.rebalance_interval {
        let shared = Arc::clone(&shared);
        workers.push(thread::spawn(move || rebalance::run(&shared, interval)));
    }

    let acceptor = if config.reactor_threads > 0 {
        reactor::spawn(Arc::clone(&shared), listener, job_tx, workers)?
    } else {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutting_down() {
                    break;
                }
                if let Ok(stream) = stream {
                    let cap = shared.config.effective_max_connections() as u64;
                    if shared.metrics.connections_open_now() >= cap {
                        drop(stream); // over the cap: shed the connection itself
                        continue;
                    }
                    let shared = Arc::clone(&shared);
                    let job_tx = job_tx.clone();
                    thread::spawn(move || connection_loop(&shared, &job_tx, stream));
                }
            }
            // No more connections will be admitted; once the connection
            // threads drop their queue clones the workers see disconnect.
            drop(job_tx);
            for worker in workers {
                let _ = worker.join();
            }
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
    })
}

/// Serves one client connection on the thread-per-connection plane: read a
/// frame, answer it, repeat. Requests still travel in [`RequestFrame`]
/// envelopes — the wire protocol is the same on both planes — but responses
/// stay ordered because this thread waits for each reply before reading the
/// next frame.
fn connection_loop(shared: &Shared, job_tx: &Sender<Job>, mut stream: TcpStream) {
    shared.metrics.conn_opened();
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutting_down() {
            break;
        }
        let frame = match read_frame::<RequestFrame>(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // client hung up cleanly
            Err(e) if e.is_idle() => {
                continue; // idle tick; re-check the shutdown flag
            }
            Err(e) if e.is_protocol() => {
                // The peer broke framing (oversized prefix, torn frame,
                // garbage JSON). Count it, answer an error if the stream is
                // still writable, and degrade *this connection only* — the
                // workers and every other connection are untouched. The
                // error is not attributable to any request, so it carries
                // the reserved id 0.
                shared.metrics.wire_error();
                let _ = write_frame(
                    &mut stream,
                    &ResponseFrame {
                        request_id: 0,
                        response: Response::Error(format!("protocol error: {e}")),
                    },
                );
                break;
            }
            Err(_) => break, // dead transport
        };
        let shutting_down = matches!(frame.request, Request::Shutdown);
        let response = dispatch(shared, job_tx, frame.request);
        let out = ResponseFrame {
            request_id: frame.request_id,
            response,
        };
        if write_frame(&mut stream, &out).is_err() || shutting_down {
            break;
        }
    }
    shared.metrics.conn_closed();
}

/// Answers the control-plane requests inline — never a queue slot, so
/// observability (`Stats`, `LoadMap`) and operability (`Shutdown`) survive
/// overload. Returns `None` for data-plane requests, which must go through
/// admission. Shared by both connection planes; on the reactor this runs on
/// the event loop itself, so nothing here may block (the forest census is a
/// gauge maintained at session open/close, not a lock taken here).
pub(crate) fn control_response(shared: &Shared, request: &Request) -> Option<Response> {
    match request {
        Request::Stats => {
            let epoch = shared.snap.epoch();
            // The counter, not `live.len()`: a repair sweep in flight has
            // the map taken out, but its sessions are still live.
            let sessions = shared.live_sessions.load(Ordering::SeqCst) as u64;
            // Refresh the utilization gauge so Stats is current even when
            // no sweep has run since the load last moved.
            shared
                .metrics
                .set_max_link_utilization(shared.load.load().max_utilization_permille());
            Some(Response::Stats(shared.metrics.snapshot(epoch, sessions)))
        }
        // Like Stats: a read of the published plane, answerable under
        // overload without a queue slot.
        Request::LoadMap => Some(Response::LoadMap(load_map_summary(shared))),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it notices the flag without a new client.
            let _ = TcpStream::connect(shared.addr);
            Some(Response::ShuttingDown)
        }
        _ => None,
    }
}

/// Routes one request on the thread-per-connection plane: control-plane
/// inline, data-plane through admission with a rendezvous reply.
fn dispatch(shared: &Shared, job_tx: &Sender<Job>, request: Request) -> Response {
    if let Some(response) = control_response(shared, &request) {
        return response;
    }
    let (reply_tx, reply_rx) = bounded(1);
    match job_tx.try_send(Job {
        request,
        reply: Reply::Rendezvous(reply_tx),
    }) {
        Ok(()) => reply_rx
            .recv()
            .unwrap_or_else(|_| Response::Error("server shutting down".into())),
        Err(TrySendError::Full(_)) => {
            shared.metrics.shed();
            Response::Overloaded
        }
        Err(TrySendError::Disconnected(_)) => Response::Error("server shutting down".into()),
    }
}

/// Drains the admission queue until shutdown.
fn worker_loop(shared: &Shared, jobs: &Receiver<Job>) {
    loop {
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let response = execute(shared, job.request);
                job.reply.send(shared, response);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one admitted job and accounts its latency.
fn execute(shared: &Shared, request: Request) -> Response {
    let start = Instant::now();
    if let Some(delay) = shared.config.debug_delay {
        thread::sleep(delay);
    }
    let response = match request {
        Request::Federate {
            requirement,
            algorithm,
            hop_limit,
        } => federate(shared, &requirement, algorithm, hop_limit),
        Request::Mutate(mutation) => mutate(shared, &mutation),
        Request::Release { session } => release(shared, session),
        Request::Rebalance => {
            let outcome = rebalance::sweep(shared);
            Response::Rebalanced {
                migrations: outcome.migrations,
                migration_failures: outcome.migration_failures,
                max_utilization_permille: outcome.max_utilization_permille,
            }
        }
        // Handled inline by the connection thread; an admitted copy is a bug
        // in dispatch, answered defensively rather than panicking a worker.
        Request::Stats | Request::LoadMap | Request::Shutdown => {
            Response::Error("control request in queue".into())
        }
    };
    shared
        .metrics
        .record_latency_us(duration_us(start.elapsed()));
    response
}

/// Solves one requirement against the current snapshot — no shared lock is
/// held anywhere in the solve — and opens a session.
fn federate(
    shared: &Shared,
    spec: &str,
    algorithm: Algorithm,
    hop_limit: Option<usize>,
) -> Response {
    let requirement: ServiceRequirement = match spec.parse() {
        Ok(requirement) => requirement,
        Err(e) => {
            shared.metrics.failed();
            return Response::Error(format!("bad requirement {spec:?}: {e}"));
        }
    };
    // One Arc clone; everything below runs against this immutable epoch,
    // concurrent mutations notwithstanding.
    let snapshot = shared.snap.load();
    federate_against(shared, snapshot, requirement, algorithm, hop_limit)
}

/// The epoch-pinned half of [`federate`]: serves the requirement from the
/// snapshot's solve cache when possible (revalidating the cached flow
/// against the live load plane), falls through to a cold solve otherwise,
/// then opens a session — unless a mutation overtook it, in which case the
/// answer is [`Response::Stale`]. Split out so the race window is testable
/// with a deliberately outdated snapshot.
fn federate_against(
    shared: &Shared,
    snapshot: Arc<WorldSnapshot>,
    requirement: ServiceRequirement,
    algorithm: Algorithm,
    hop_limit: Option<usize>,
) -> Response {
    let key = shared.config.solve_cache.then(|| SolveKey {
        requirement: requirement.canonical_key(),
        algorithm,
        hop_limit,
    });
    // Warm path: an earlier federate against this very snapshot solved the
    // same key. The cached flow is exact w.r.t. topology and QoS (it lives
    // inside the epoch) but blind to load, so `open_session` revalidates it
    // against the live plane and refuses if the capacity is gone — the
    // request then falls through to the cold path below.
    if let Some(key) = &key {
        if let Some(flow) = snapshot.cached_solve(key) {
            match open_session(shared, &snapshot, &requirement, &flow, Some(key), true) {
                OpenOutcome::Answered(response) => {
                    if matches!(*response, Response::Federated(_)) {
                        shared.metrics.cache_hit();
                    }
                    return *response;
                }
                OpenOutcome::Refused => {
                    shared.metrics.cache_revalidation_fail();
                    // Evict the no-longer-feasible entry so the cold solve
                    // below can file its load-aware answer (`cache_solve`
                    // is first-writer-wins and would keep the stale flow).
                    snapshot.evict_solve(key);
                }
            }
        } else {
            shared.metrics.cache_miss();
        }
    }
    // Residual routing: when the load plane tracks this snapshot's epoch,
    // solve against what live sessions left free — the clamped overlay and
    // its patched table. Otherwise (the `--no-residual` knob, or a plane
    // mid-rebase after a mutation) fall back to raw capacity. Either
    // context is an immutable `Arc` bundle; no lock is held across the
    // solve.
    let plane = shared.load.load();
    let residual =
        shared.config.residual && plane.epoch() == snapshot.epoch() && !plane.map().is_empty();
    let ctx = if residual {
        plane.context()
    } else {
        snapshot.context()
    };
    drop(plane);
    let solved = match algorithm {
        Algorithm::Sflow => {
            let solver = match hop_limit {
                Some(limit) => {
                    let (matrix, built) = snapshot.hop_matrix_tracked();
                    if built {
                        shared.metrics.hop_cache_miss();
                    } else {
                        shared.metrics.hop_cache_hit();
                    }
                    Solver::new(&ctx).with_hop_matrix(limit, matrix)
                }
                None => Solver::new(&ctx),
            };
            solver.solve(&requirement)
        }
        Algorithm::Global => GlobalOptimalAlgorithm.federate(&ctx, &requirement),
        Algorithm::Fixed => FixedAlgorithm.federate(&ctx, &requirement),
        Algorithm::ServicePath => ServicePathAlgorithm.federate(&ctx, &requirement),
    };
    let flow = match solved {
        Ok(flow) => flow,
        Err(e) => {
            if residual {
                // The demand did not fit into residual capacity. Counted
                // separately from plain failures: on a loaded server this
                // is admission control doing its job, not a bad request.
                shared.metrics.residual_reject();
            }
            shared.metrics.failed();
            return Response::Error(e.to_string());
        }
    };
    audit_flow(shared, &ctx, &requirement, &flow);
    // File the answer under its key. `cache_solve` is first-writer-wins, so
    // racing cold solves of one key converge on a single canonical flow —
    // the instance set later tenants' forests share.
    let flow = match &key {
        Some(key) => snapshot.cache_solve(key.clone(), flow),
        None => Arc::new(flow),
    };
    // A cold solve against the residual context already proved it fits;
    // no revalidation, so this open cannot be refused.
    match open_session(shared, &snapshot, &requirement, &flow, key.as_ref(), false) {
        OpenOutcome::Answered(response) => *response,
        OpenOutcome::Refused => Response::Error("cold open refused".into()),
    }
}

/// What [`open_session`] did with a candidate flow.
enum OpenOutcome {
    /// A definitive answer: the session opened (`Federated`), or the open
    /// is impossible at this epoch (`Stale`, table full). Boxed so the
    /// `Refused` arm doesn't pay `Response`'s footprint.
    Answered(Box<Response>),
    /// The cached flow failed load revalidation; the caller should fall
    /// through to a cold solve.
    Refused,
}

/// `true` if two flows describe the same federation: same instance
/// selection, same streams over the same overlay paths, same quality.
fn same_flow(a: &FlowGraph, b: &FlowGraph) -> bool {
    a.selection() == b.selection() && a.quality() == b.quality() && a.edges() == b.edges()
}

/// Opens one session for `flow` under a single sessions-lock hold: epoch
/// and capacity checks, forest attach-or-found, reservation booking. The
/// one entry point both the warm (cached) and cold (fresh solve) paths
/// funnel through, so the admission rules cannot drift apart.
///
/// With `revalidate`, the flow's full reservation must fit the live
/// residual plane or the open is [`OpenOutcome::Refused`] — unless the
/// tenant attaches to a live forest, whose shared links are already booked
/// (the marginal demand of an exact-key tenant is zero, the `max` of
/// identical streams being the holder's existing reservation).
fn open_session(
    shared: &Shared,
    snapshot: &WorldSnapshot,
    requirement: &ServiceRequirement,
    flow: &Arc<FlowGraph>,
    key: Option<&SolveKey>,
    revalidate: bool,
) -> OpenOutcome {
    let mut sessions = shared.sessions.lock();
    // Epoch check under the sessions lock: repair sweeps also take it, so
    // this decides atomically whether the session will be covered by every
    // future sweep. If a mutation overtook the solve, the answer describes
    // a world that no longer exists — say so instead of storing it.
    let current_epoch = shared.snap.epoch();
    if current_epoch != snapshot.epoch() {
        drop(sessions);
        shared.metrics.stale();
        return OpenOutcome::Answered(Box::new(Response::Stale {
            solved_epoch: snapshot.epoch(),
            current_epoch,
        }));
    }
    // The counter, not `live.len()`: a concurrent repair sweep empties the
    // map while it re-resolves, and the cap must keep counting those
    // sessions or a long sweep admits up to a full extra table. Opens all
    // hold the sessions lock, so check-then-increment cannot over-admit;
    // sweep decrements can only make this check conservative.
    if shared.live_sessions.load(Ordering::SeqCst) >= shared.config.max_sessions {
        shared.metrics.failed();
        return OpenOutcome::Answered(Box::new(Response::Error("session table full".into())));
    }
    // Attach to the key's live forest if it matches exactly — same epoch,
    // same flow. A forest left at another epoch (or moved to a different
    // instance set by a repair) does not match and is superseded below.
    let attach = key.and_then(|key| {
        let fid = *sessions.by_key.get(key)?;
        let forest = sessions.forests.get(&fid)?;
        (forest.epoch == snapshot.epoch() && same_flow(&forest.flow, flow)).then_some(fid)
    });
    let links = match attach {
        Some(_) => Vec::new(),
        None => links_of(flow, snapshot.overlay()),
    };
    if revalidate && attach.is_none() {
        // The cached flow must fit residual capacity in full (it founds a
        // new forest, so its whole reservation is marginal). Skipped when
        // residual admission is off or the plane is mid-rebase — the cold
        // path would be equally blind there.
        let plane = shared.load.load();
        if shared.config.residual && plane.epoch() == snapshot.epoch() && !plane.fits(&links) {
            return OpenOutcome::Refused;
        }
    }
    let session = sessions.next_id;
    sessions.next_id += 1;
    let forest = match (key, attach) {
        (_, Some(fid)) => {
            if let Some(forest) = sessions.forests.get_mut(&fid) {
                forest.members.push(session);
            }
            Some(fid)
        }
        (Some(key), None) => {
            // Found a forest for this key (superseding any stale holder of
            // the `by_key` slot — its members keep being served, it just
            // accepts no new tenants).
            let fid = sessions.next_forest;
            sessions.next_forest += 1;
            sessions.forests.insert(
                fid,
                Forest {
                    key: key.clone(),
                    epoch: snapshot.epoch(),
                    flow: flow.as_ref().clone(),
                    members: vec![session],
                },
            );
            sessions.by_key.insert(key.clone(), fid);
            Some(fid)
        }
        (None, None) => None,
    };
    let summary = FlowSummary {
        session,
        epoch: snapshot.epoch(),
        bandwidth_kbps: flow.quality().bandwidth.as_kbps(),
        latency_us: flow.quality().latency.as_micros(),
        instances: flow.instances().clone(),
    };
    sessions.live.insert(
        session,
        Session {
            requirement: requirement.clone(),
            flow: flow.as_ref().clone(),
            solved_epoch: snapshot.epoch(),
            links: links.clone(),
            forest,
        },
    );
    shared.live_sessions.fetch_add(1, Ordering::SeqCst);
    // Keep the forest census current at its mutation points, so `Stats`
    // never takes the sessions lock (the reactor answers it inline and must
    // not wait behind a mutation's rebase).
    let (forests, tenants) = sessions.forest_census();
    shared.metrics.set_forests(forests, tenants);
    // Book the reservations, still under the sessions lock, re-loading the
    // plane because other opens may have published since our solve-time
    // load. A plane at another epoch means a mutation's rebase is imminent
    // and will account this session from the table itself. A forest tenant
    // books nothing — the holder's reservation already carries the shared
    // streams.
    if !links.is_empty() {
        let plane = shared.load.load();
        if plane.epoch() == snapshot.epoch() {
            shared.load.publish(Arc::new(plane.with_changes(
                &links,
                &[],
                shared.config.route_workers,
            )));
        }
    }
    shared.metrics.served();
    OpenOutcome::Answered(Box::new(Response::Federated(summary)))
}

/// Closes one session and releases exactly the reservations it holds — the
/// other half of the session lifecycle, and the only way load leaves the
/// plane without a migration or a repair drop.
///
/// Forest members complicate this in one way: the *holder* carries the
/// whole forest's reservation. A holder leaving survivors hands its links
/// to the next member under the same lock hold — the ledger never moves —
/// and only the last member out actually releases the booking.
fn release(shared: &Shared, session: u64) -> Response {
    let mut sessions = shared.sessions.lock();
    let Some(mut closed) = sessions.live.remove(&session) else {
        shared.metrics.failed();
        return Response::Error(format!("no such session {session}"));
    };
    shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
    if let Some(fid) = closed.forest {
        if let Some(forest) = sessions.forests.get_mut(&fid) {
            forest.members.retain(|&m| m != session);
            let heir = forest.members.first().copied();
            match heir {
                Some(heir) => {
                    if !closed.links.is_empty() {
                        // The holder leaves; a survivor inherits the
                        // booking in place. Nothing is published: the
                        // ledger still equals the sum of session links.
                        if let Some(survivor) = sessions.live.get_mut(&heir) {
                            survivor.links = std::mem::take(&mut closed.links);
                        }
                    }
                }
                None => {
                    // Last member out: the forest dissolves and `closed`
                    // (the holder by construction) releases below. The
                    // `by_key` slot is dropped only if this forest still
                    // owns it — a superseding forest may have taken it.
                    if let Some(gone) = sessions.forests.remove(&fid) {
                        if sessions.by_key.get(&gone.key) == Some(&fid) {
                            sessions.by_key.remove(&gone.key);
                        }
                    }
                }
            }
        }
    }
    let (forests, tenants) = sessions.forest_census();
    shared.metrics.set_forests(forests, tenants);
    let plane = shared.load.load();
    // Release against the epoch the links were booked under; across a
    // rebase the ledger is rebuilt from the table (which no longer holds
    // this session), so there is nothing to subtract.
    if !closed.links.is_empty() && plane.epoch() == closed.solved_epoch {
        shared.load.publish(Arc::new(plane.with_changes(
            &[],
            &closed.links,
            shared.config.route_workers,
        )));
    }
    Response::Released { session }
}

/// Flattens the published load plane for the wire.
fn load_map_summary(shared: &Shared) -> LoadMapSummary {
    let plane = shared.load.load();
    let links = plane
        .map()
        .iter_reserved()
        .map(|(link, reserved_kbps)| LinkLoad {
            from: link.0,
            to: link.1,
            capacity_kbps: plane.capacity(link).map_or(0, Bandwidth::as_kbps),
            reserved_kbps,
            estimate_kbps: plane.map().estimate_kbps(link),
            residual_kbps: plane.residual_kbps(link),
            utilization_permille: plane.utilization_permille(link),
        })
        .collect();
    LoadMapSummary {
        epoch: plane.epoch(),
        version: plane.version(),
        max_utilization_permille: plane.max_utilization_permille(),
        links,
    }
}

/// Under `--audit`, re-derives every answer's invariants from raw overlay
/// links ([`FlowGraphAuditor`]) and counts violations in the server stats.
/// Counting, not fatal: operators watch `audit_violations`, answers still
/// flow.
fn audit_flow(
    shared: &Shared,
    ctx: &FederationContext<'_>,
    requirement: &ServiceRequirement,
    flow: &FlowGraph,
) {
    if !shared.config.audit {
        return;
    }
    let report = FlowGraphAuditor::new(ctx, requirement).audit(flow);
    if !report.is_clean() {
        shared
            .metrics
            .audit_violations(report.violations.len() as u64);
    }
}

/// Applies one mutation and repairs every session against the new epoch —
/// sFlow's agility as a server operation.
///
/// The world mutex serializes mutations *against each other only*; readers
/// load snapshots and never block here. The guard intentionally spans the
/// repair sweep so sweeps from back-to-back mutations cannot interleave —
/// the one sanctioned exception to the no-guard-across-solve invariant,
/// which is why the binding carries an audit allow.
fn mutate(shared: &Shared, mutation: &crate::Mutation) -> Response {
    let mut world = shared.world.lock(); // audit:allow(guard-across-solve): sanctioned mutator, see fn docs
    let from_epoch = world.epoch();
    let rebuild = match world.apply(mutation) {
        Ok(rebuild) => rebuild,
        Err(e) => {
            shared.metrics.failed();
            return Response::Error(e.to_string());
        }
    };
    shared
        .metrics
        .rebuild(duration_us(rebuild.duration), rebuild.trees_recomputed);
    // `apply` has already published the successor: federates from here on
    // solve at `epoch`, and any solve still in flight at `from_epoch` will
    // answer `Stale` rather than slip into the session table behind us.
    let snapshot = world.snapshot();
    let epoch = snapshot.epoch();
    let ctx = snapshot.context();

    // Sweep the sessions through repair. The map is *taken* out of the
    // sessions lock so the lock itself is never held across a repair solve;
    // federates landing mid-sweep open sessions at the new epoch and merge
    // back untouched (ids stay unique — `next_id` is monotonic and stays in
    // place).
    let taken = std::mem::take(&mut shared.sessions.lock().live);
    let mut kept = BTreeMap::new();
    let mut repaired = 0usize;
    let mut dropped = 0usize;
    for (id, mut session) in taken {
        if session.solved_epoch == epoch {
            // Opened by a federate that loaded the successor snapshot after
            // `apply` published it but before this sweep took the map — it
            // is already current; merge it back untouched.
            kept.insert(id, session);
            continue;
        }
        if session.solved_epoch != from_epoch {
            // Defensive: every sweep repairs sessions solved at exactly the
            // epoch this mutation replaced. A session left behind at some
            // older epoch has already been renumbered past — drop it rather
            // than repair it against a world it was never solved in.
            dropped += 1;
            shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        match repair(&ctx, &session.requirement, &session.flow) {
            Ok(outcome) => {
                audit_flow(shared, &ctx, &session.requirement, &outcome.flow);
                // Re-derive the reservations from the repaired flow over the
                // *new* overlay — repair may have moved the session, and the
                // old node indices no longer mean anything.
                session.links = links_of(&outcome.flow, snapshot.overlay());
                session.flow = outcome.flow;
                session.solved_epoch = epoch;
                kept.insert(id, session);
                repaired += 1;
            }
            Err(_) => {
                dropped += 1;
                shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    // Merge the survivors back and rebase the load plane onto the new epoch
    // in one sessions-lock hold: the ledger is recomputed from the full
    // merged table (survivors plus any sessions opened at the new epoch
    // mid-sweep), so it cannot drift from what is actually live. The
    // estimator history is carried over — reservations are exact, estimates
    // are memory.
    let mut sessions = shared.sessions.lock();
    sessions.live.extend(kept);
    // Carry the forests across the epoch. Repair is deterministic over
    // identical inputs, so every surviving member of a forest was repaired
    // onto the same new flow — but the per-session sweep above gave each of
    // them the flow's *full* links. Re-pin the holder role: the first
    // survivor keeps the reservation, every other member's links clear, so
    // the rebase below books each shared instance set exactly once (`max`,
    // not `sum`, of the common streams). Forests with no survivors (or
    // already created at the new epoch mid-sweep) dissolve or pass through.
    {
        let Sessions {
            live,
            forests,
            by_key,
            ..
        } = &mut *sessions;
        forests.retain(|fid, forest| {
            if forest.epoch == epoch {
                return true; // opened mid-sweep, already current
            }
            forest
                .members
                .retain(|m| live.get(m).is_some_and(|s| s.solved_epoch == epoch));
            let Some(&holder) = forest.members.first() else {
                if by_key.get(&forest.key) == Some(fid) {
                    by_key.remove(&forest.key);
                }
                return false;
            };
            if let Some(held) = live.get(&holder) {
                forest.flow = held.flow.clone();
            }
            forest.epoch = epoch;
            for member in forest.members.iter().skip(1) {
                if let Some(tenant) = live.get_mut(member) {
                    tenant.links = Vec::new();
                }
            }
            true
        });
    }
    let (forests, tenants) = sessions.forest_census();
    shared.metrics.set_forests(forests, tenants);
    let mut map = LoadMap::from_reservations(
        sessions
            .live
            .values()
            .flat_map(|session| session.links.iter().copied()),
    );
    map.adopt_estimates(shared.load.load().map());
    shared.load.publish(Arc::new(LoadPlane::rebased(
        &snapshot,
        map,
        shared.config.route_workers,
    )));
    drop(sessions);
    Response::Mutated {
        epoch,
        repaired,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutation;
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement, Fixture};
    use sflow_net::{Compatibility, Placement, ServiceId, ServiceInstance, UnderlyingNetwork};
    use sflow_routing::{Latency, Qos};

    /// A `Shared` with no listener behind it: enough to drive the worker
    /// entry points (`federate_against`, `mutate`) directly.
    fn shared_over_diamond() -> Shared {
        let mut world = World::new(diamond_fixture());
        world.set_route_workers(1);
        let load = LoadCell::new(Arc::new(LoadPlane::fresh(&world.snapshot())));
        Shared {
            addr: "127.0.0.1:0".parse().unwrap(),
            config: ServerConfig::default(),
            snap: world.handle(),
            world: Mutex::new(world),
            sessions: Mutex::new(Sessions::default()),
            load,
            live_sessions: AtomicUsize::new(0),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Satellite regression: a solve that a mutation overtakes is answered
    /// with the typed `Stale` response — carrying both epochs — instead of
    /// opening a session solved against a renumbered world.
    #[test]
    fn a_solve_overtaken_by_a_mutation_is_answered_stale() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        // The solver's snapshot load...
        let stale_snapshot = shared.snap.load();
        // ...raced by an instance failure, which renumbers the overlay.
        let victim = stale_snapshot
            .overlay()
            .graph()
            .node_ids()
            .map(|n| stale_snapshot.overlay().instance(n))
            .find(|i| *i != stale_snapshot.source())
            .unwrap();
        match mutate(&shared, &Mutation::FailInstance { instance: victim }) {
            Response::Mutated { epoch: 1, .. } => {}
            other => panic!("expected Mutated at epoch 1, got {other:?}"),
        }

        match federate_against(
            &shared,
            stale_snapshot,
            requirement.clone(),
            Algorithm::Sflow,
            Some(2),
        ) {
            Response::Stale {
                solved_epoch,
                current_epoch,
            } => {
                assert_eq!(solved_epoch, 0);
                assert_eq!(current_epoch, 1);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // No session opened; the stale counter moved; nothing was "served".
        assert_eq!(shared.sessions.lock().live.len(), 0);
        let stats = shared.metrics.snapshot(shared.snap.epoch(), 0);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.served, 0);

        // A fresh load federates normally at the new epoch.
        let fresh = shared.snap.load();
        match federate_against(&shared, fresh, requirement, Algorithm::Sflow, Some(2)) {
            Response::Federated(s) => assert_eq!(s.epoch, 1),
            other => panic!("expected Federated, got {other:?}"),
        }
        assert_eq!(shared.sessions.lock().live.len(), 1);
        assert_eq!(shared.live_sessions.load(Ordering::SeqCst), 1);
    }

    /// Regression: a federate can load the successor snapshot (published by
    /// `World::apply` *before* the sweep takes the sessions map) and open a
    /// session at the new epoch mid-sweep. The sweep must merge it back
    /// untouched — not drop it as "left behind at some older epoch".
    #[test]
    fn a_session_opened_at_the_successor_epoch_survives_the_sweep() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        // A session legitimately opened at epoch 0 — the sweep's real work.
        let fresh = shared.snap.load();
        match federate_against(&shared, fresh, requirement.clone(), Algorithm::Sflow, None) {
            Response::Federated(s) => assert_eq!(s.epoch, 0),
            other => panic!("expected Federated, got {other:?}"),
        }
        // Emulate the publish-to-sweep race: a session already recorded at
        // the epoch the mutation is about to land on (the federate passed
        // the epoch check because `apply` had published the successor).
        let snapshot = shared.snap.load();
        let flow = Solver::new(&snapshot.context())
            .solve(&requirement)
            .unwrap();
        let links = links_of(&flow, snapshot.overlay());
        shared.sessions.lock().live.insert(
            99,
            Session {
                requirement: requirement.clone(),
                flow,
                solved_epoch: 1,
                links,
                forest: None,
            },
        );
        shared.live_sessions.fetch_add(1, Ordering::SeqCst);

        let snapshot = shared.snap.load();
        let victim = snapshot
            .overlay()
            .graph()
            .node_ids()
            .map(|n| snapshot.overlay().instance(n))
            .find(|i| *i != snapshot.source())
            .unwrap();
        let (repaired, dropped) =
            match mutate(&shared, &Mutation::FailInstance { instance: victim }) {
                Response::Mutated {
                    epoch: 1,
                    repaired,
                    dropped,
                } => (repaired, dropped),
                other => panic!("expected Mutated at epoch 1, got {other:?}"),
            };
        // Only the epoch-0 session was swept; the epoch-1 session is
        // neither repaired nor dropped.
        assert_eq!(repaired + dropped, 1);
        let sessions = shared.sessions.lock();
        let survivor = sessions.live.get(&99).expect("epoch-1 session survives");
        assert_eq!(survivor.solved_epoch, 1);
        assert_eq!(
            shared.live_sessions.load(Ordering::SeqCst),
            sessions.live.len(),
            "counter tracks the table once the sweep is done"
        );
    }

    /// Regression: while a repair sweep has the map taken out, admission and
    /// the stats count must still see the swept-out sessions — otherwise a
    /// long sweep admits up to a full extra table and Stats reports ~0.
    #[test]
    fn admission_and_stats_count_sessions_swept_out_for_repair() {
        let mut shared = shared_over_diamond();
        shared.config.max_sessions = 1;
        let requirement = diamond_requirement();
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement.clone(),
            Algorithm::Sflow,
            None,
        ) {
            Response::Federated(_) => {}
            other => panic!("expected Federated, got {other:?}"),
        }
        // Simulate a sweep in progress: the map is taken out of the lock,
        // but its session is still live from the clients' point of view.
        let taken = std::mem::take(&mut shared.sessions.lock().live);
        assert_eq!(shared.live_sessions.load(Ordering::SeqCst), 1);
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement,
            Algorithm::Sflow,
            None,
        ) {
            Response::Error(e) => assert!(e.contains("session table full"), "got {e:?}"),
            other => panic!("expected the session cap to hold mid-sweep, got {other:?}"),
        }
        shared.sessions.lock().live.extend(taken);
        assert_eq!(shared.sessions.lock().live.len(), 1);
    }

    /// The conservation invariant: the published ledger is exactly the sum
    /// of the live sessions' recorded reservations — per link, both
    /// directions, no leak and no double-count.
    fn assert_conserved(shared: &Shared) {
        let sessions = shared.sessions.lock();
        let expected = LoadMap::from_reservations(
            sessions
                .live
                .values()
                .flat_map(|session| session.links.iter().copied()),
        );
        let plane = shared.load.load();
        let got: Vec<(LinkId, u64)> = plane.map().iter_reserved().collect();
        let want: Vec<(LinkId, u64)> = expected.iter_reserved().collect();
        assert_eq!(got, want, "ledger drifted from the session table");
        assert_eq!(
            plane.map().total_reserved_kbps(),
            expected.total_reserved_kbps()
        );
    }

    /// Satellite property test: under a random interleaving of session
    /// opens, closes, rebalancer sweeps and QoS mutations (each of which
    /// triggers a repair sweep and a ledger rebase), the sum of per-link
    /// reserved bandwidth in the published `LoadMap` always equals the sum
    /// over live sessions of their paths' reservations. No leaked
    /// reservation on a failed open, a failed migration, or a repair drop.
    #[test]
    fn the_ledger_conserves_reservations_under_random_interleavings() {
        let shared = shared_over_diamond(); // residual routing on (default)
        let requirement = diamond_requirement();
        // The workspace has no RNG dependency here; a 64-bit LCG
        // (Knuth's MMIX constants) is plenty for op-sequence shuffling.
        let mut state: u64 = 0x5eed_cafe;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        // Every directed overlay link, in stable identities, for QoS wobble.
        let links: Vec<(ServiceInstance, ServiceInstance)> = {
            let snapshot = shared.snap.load();
            let overlay = snapshot.overlay();
            overlay
                .graph()
                .node_ids()
                .flat_map(|n| overlay.graph().out_edges(n))
                .map(|e| (overlay.instance(e.from), overlay.instance(e.to)))
                .collect()
        };
        for _ in 0..200 {
            match next() % 6 {
                0 | 1 => {
                    // Open — may be rejected by residual admission; that
                    // must leave the ledger untouched.
                    let _ = federate_against(
                        &shared,
                        shared.snap.load(),
                        requirement.clone(),
                        Algorithm::Sflow,
                        None,
                    );
                }
                2 => {
                    // Close a random session (sometimes a bogus id).
                    let id = {
                        let sessions = shared.sessions.lock();
                        let n = sessions.live.len();
                        if n == 0 || next() % 8 == 0 {
                            u64::MAX
                        } else {
                            let skip = (next() as usize) % n;
                            *sessions.live.keys().nth(skip).unwrap()
                        }
                    };
                    let _ = release(&shared, id);
                }
                3 => {
                    let _ = rebalance::sweep(&shared);
                }
                _ => {
                    // Congestion wobble: repair-sweeps every session and
                    // rebases the ledger onto the new epoch.
                    let (from, to) = links[(next() as usize) % links.len()];
                    let _ = mutate(
                        &shared,
                        &Mutation::SetLinkQos {
                            from,
                            to,
                            bandwidth_kbps: 40 + next() % 80,
                            latency_us: 10,
                        },
                    );
                }
            }
            assert_conserved(&shared);
            let sessions = shared.sessions.lock().live.len();
            assert_eq!(
                shared.live_sessions.load(Ordering::SeqCst),
                sessions,
                "the live counter tracks the table between operations"
            );
        }
        // A structural mutation at the end: instance failure renumbers the
        // overlay and drops routed-through sessions; the rebase must scrub
        // exactly the dead reservations.
        let snapshot = shared.snap.load();
        let victim = snapshot
            .overlay()
            .graph()
            .node_ids()
            .map(|n| snapshot.overlay().instance(n))
            .find(|i| *i != snapshot.source())
            .unwrap();
        let _ = mutate(&shared, &Mutation::FailInstance { instance: victim });
        assert_conserved(&shared);
    }

    /// Two equal-width disjoint routes `h0 → {h1, h2} → h3`: migration is
    /// purely a matter of load, never of topology preference. Served blind
    /// so both sessions pile onto the same route and hand the rebalancer
    /// real work.
    fn shared_over_twin_routes() -> (Shared, ServiceRequirement) {
        let mut b = UnderlyingNetwork::builder();
        let h = b.add_hosts(4);
        let q = |bw| Qos::new(Bandwidth::kbps(bw), Latency::from_micros(10));
        b.link(h[0], h[1], q(100))
            .link(h[1], h[3], q(100))
            .link(h[0], h[2], q(100))
            .link(h[2], h[3], q(100));
        let net = b.build();
        let s: Vec<ServiceId> = (0..3).map(ServiceId::new).collect();
        let mut p = Placement::new();
        p.add(ServiceInstance::new(s[0], h[0]));
        p.add(ServiceInstance::new(s[1], h[1]));
        p.add(ServiceInstance::new(s[1], h[2]));
        p.add(ServiceInstance::new(s[2], h[3]));
        let compat = Compatibility::from_pairs([(s[0], s[1]), (s[1], s[2])]);
        let overlay = sflow_net::OverlayGraph::build(&net, &p, &compat).unwrap();
        let fixture = Fixture::new(net, overlay, s[0]);
        let requirement = ServiceRequirement::from_edges([(s[0], s[1]), (s[1], s[2])]).unwrap();

        let mut world = World::new(fixture);
        world.set_route_workers(1);
        let load = LoadCell::new(Arc::new(LoadPlane::fresh(&world.snapshot())));
        let shared = Shared {
            addr: "127.0.0.1:0".parse().unwrap(),
            config: ServerConfig {
                residual: false, // blind opens; the *rebalancer* is under test
                // Cached repeats would share one forest (one booking, no
                // movable second session); this test needs two independent
                // bookings on the same route.
                solve_cache: false,
                utilization_threshold_permille: 900,
                route_workers: 1,
                ..ServerConfig::default()
            },
            snap: world.handle(),
            world: Mutex::new(world),
            sessions: Mutex::new(Sessions::default()),
            load,
            live_sessions: AtomicUsize::new(0),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
        };
        (shared, requirement)
    }

    /// Satellite regression, the make-before-break contract: a sweep
    /// migrates the session off the doubly-booked route, the session is
    /// never absent from the table at any instant (a poller thread hammers
    /// the lock while sweeps run), and a sweep with nothing to gain changes
    /// nothing — failed movers keep their flows and links byte-for-byte.
    #[test]
    fn rebalancer_migrates_make_before_break_and_failures_change_nothing() {
        let (shared, requirement) = shared_over_twin_routes();
        for _ in 0..2 {
            match federate_against(
                &shared,
                shared.snap.load(),
                requirement.clone(),
                Algorithm::Sflow,
                None,
            ) {
                Response::Federated(_) => {}
                other => panic!("expected Federated, got {other:?}"),
            }
        }
        // Blind routing put both sessions on one route: one link pair is
        // double-booked at 2000‰, the other untouched.
        assert_eq!(shared.load.load().max_utilization_permille(), 2000);
        {
            let sessions = shared.sessions.lock();
            let selections: Vec<_> = sessions.live.values().map(|s| s.flow.selection()).collect();
            assert_eq!(selections[0], selections[1], "blind opens stack up");
        }
        assert_conserved(&shared);

        // Sweep with a poller thread proving the sessions never vanish.
        let stop = AtomicBool::new(false);
        let outcome = thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    let sessions = shared.sessions.lock();
                    assert_eq!(
                        sessions.live.len(),
                        2,
                        "a migrating session must never be absent from the table"
                    );
                    drop(sessions);
                    std::hint::spin_loop();
                }
            });
            let outcome = rebalance::sweep(&shared);
            stop.store(true, Ordering::SeqCst);
            outcome
        });
        assert_eq!(outcome.migrations, 1, "one mover drains the hot route");
        assert_eq!(
            outcome.max_utilization_permille, 1000,
            "one session per route after the sweep"
        );
        assert_conserved(&shared);
        {
            let sessions = shared.sessions.lock();
            let selections: Vec<_> = sessions.live.values().map(|s| s.flow.selection()).collect();
            assert_ne!(selections[0], selections[1], "the mover changed route");
        }
        let stats = shared.metrics.snapshot(0, 2);
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.max_link_utilization_permille, 1000);

        // Both routes now sit at 1000‰ — still above the threshold, but no
        // move can improve the world. The sweep must fail every mover and
        // leave both sessions untouched.
        let before: BTreeMap<u64, Vec<(LinkId, u64)>> = shared
            .sessions
            .lock()
            .live
            .iter()
            .map(|(&id, s)| (id, s.links.clone()))
            .collect();
        let outcome = rebalance::sweep(&shared);
        assert_eq!(outcome.migrations, 0);
        assert!(
            outcome.migration_failures >= 1,
            "hot but unimprovable movers are counted as failures"
        );
        let after: BTreeMap<u64, Vec<(LinkId, u64)>> = shared
            .sessions
            .lock()
            .live
            .iter()
            .map(|(&id, s)| (id, s.links.clone()))
            .collect();
        assert_eq!(before, after, "a failed migration changes nothing");
        assert_conserved(&shared);

        // Releasing the migrated sessions drains the ledger completely.
        let ids: Vec<u64> = before.keys().copied().collect();
        for id in ids {
            match release(&shared, id) {
                Response::Released { session } => assert_eq!(session, id),
                other => panic!("expected Released, got {other:?}"),
            }
        }
        assert!(shared.load.load().map().is_empty(), "no leaked reservation");
        assert_conserved(&shared);
    }

    /// Tentpole: repeated same-requirement federates hit the per-snapshot
    /// solve cache, attach to one shared forest, and reserve the shared
    /// links once (`max`, not `sum`) — and the warm answer is byte-identical
    /// to the cold one and audits clean.
    #[test]
    fn repeated_federates_share_a_forest_one_booking_and_identical_flows() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        // The reference answer at this epoch+load: the cold path below sees
        // an empty ledger, so it solves against this same raw context.
        let snapshot = shared.snap.load();
        let reference = Solver::new(&snapshot.context())
            .solve(&requirement)
            .unwrap();

        for _ in 0..3 {
            match federate_against(
                &shared,
                shared.snap.load(),
                requirement.clone(),
                Algorithm::Sflow,
                None,
            ) {
                Response::Federated(_) => {}
                other => panic!("expected Federated, got {other:?}"),
            }
        }
        let stats = shared.metrics.snapshot(0, 3);
        assert_eq!(stats.cache_misses, 1, "only the first solve is cold");
        assert_eq!(stats.cache_hits, 2, "repeats are served warm");
        assert_eq!(stats.cache_revalidation_fails, 0);
        assert_eq!(snapshot.cached_solve_count(), 1);

        let sessions = shared.sessions.lock();
        assert_eq!(
            sessions.forest_census(),
            (1, 3),
            "one forest, three tenants"
        );
        // Exactly one member — the holder — carries the reservation; the
        // ledger reserves the shared links once, not three times.
        let holders = sessions
            .live
            .values()
            .filter(|s| !s.links.is_empty())
            .count();
        assert_eq!(holders, 1, "one holder books for the whole forest");
        assert!(sessions.live.values().all(|s| s.forest == Some(0)));
        // Byte-identical satellite: every tenant's flow serializes to the
        // same bytes as an independent cold solve at the same epoch+load,
        // and the shared flow audits clean.
        let want = serde_json::to_string(&reference).unwrap();
        for session in sessions.live.values() {
            assert_eq!(
                serde_json::to_string(&session.flow).unwrap(),
                want,
                "a cache hit must be byte-identical to the cold solve"
            );
        }
        let cached = snapshot
            .cached_solve(&SolveKey {
                requirement: requirement.canonical_key(),
                algorithm: Algorithm::Sflow,
                hop_limit: None,
            })
            .expect("the cold solve filled the cache");
        let ctx = snapshot.context();
        let report = FlowGraphAuditor::new(&ctx, &requirement).audit(&cached);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        drop(sessions);
        assert_conserved(&shared);
    }

    /// Satellite: a cached solve never survives an epoch whose patch
    /// dirties one of its links — and survives (same arc, no re-solve) an
    /// epoch that patches only links it avoids.
    #[test]
    fn qos_patches_invalidate_dirtied_cache_entries_and_keep_clean_ones() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement.clone(),
            Algorithm::Sflow,
            None,
        ) {
            Response::Federated(_) => {}
            other => panic!("expected Federated, got {other:?}"),
        }
        let snapshot = shared.snap.load();
        assert_eq!(snapshot.cached_solve_count(), 1);
        // Classify every directed overlay link as on or off the cached
        // flow's paths (instance identities survive QoS epochs).
        let key = SolveKey {
            requirement: requirement.canonical_key(),
            algorithm: Algorithm::Sflow,
            hop_limit: None,
        };
        let cached = snapshot.cached_solve(&key).unwrap();
        let overlay = snapshot.overlay();
        let used: Vec<(ServiceInstance, ServiceInstance)> = cached
            .edges()
            .iter()
            .flat_map(|e| e.overlay_path.windows(2))
            .map(|w| (overlay.instance(w[0]), overlay.instance(w[1])))
            .collect();
        let all: Vec<(ServiceInstance, ServiceInstance)> = overlay
            .graph()
            .node_ids()
            .flat_map(|n| overlay.graph().out_edges(n))
            .map(|e| (overlay.instance(e.from), overlay.instance(e.to)))
            .collect();
        let &(cf, ct) = all.iter().find(|pair| !used.contains(pair)).unwrap();
        let &(df, dt) = all.iter().find(|pair| used.contains(pair)).unwrap();

        // An off-path wobble: the entry is adopted across the epoch.
        match mutate(
            &shared,
            &Mutation::SetLinkQos {
                from: cf,
                to: ct,
                bandwidth_kbps: 77,
                latency_us: 1_234,
            },
        ) {
            Response::Mutated { epoch: 1, .. } => {}
            other => panic!("expected Mutated, got {other:?}"),
        }
        let clean = shared.snap.load();
        let carried = clean
            .cached_solve(&key)
            .expect("a clean patch keeps the entry");
        assert!(Arc::ptr_eq(&carried, &cached), "adoption shares the arc");

        // A patch on a link the flow traverses: the entry must not survive.
        match mutate(
            &shared,
            &Mutation::SetLinkQos {
                from: df,
                to: dt,
                bandwidth_kbps: 66,
                latency_us: 2_345,
            },
        ) {
            Response::Mutated { epoch: 2, .. } => {}
            other => panic!("expected Mutated, got {other:?}"),
        }
        assert!(
            shared.snap.load().cached_solve(&key).is_none(),
            "a dirtied path drops the cached solve"
        );
    }

    /// Forest lifecycle: releasing the holder hands the booking to a
    /// survivor in place (the ledger never moves), and only the last member
    /// out releases it.
    #[test]
    fn releasing_the_holder_hands_the_booking_over_and_the_last_out_releases() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        for _ in 0..3 {
            match federate_against(
                &shared,
                shared.snap.load(),
                requirement.clone(),
                Algorithm::Sflow,
                None,
            ) {
                Response::Federated(_) => {}
                other => panic!("expected Federated, got {other:?}"),
            }
        }
        let booked = shared.load.load().map().total_reserved_kbps();
        assert!(booked > 0, "the holder booked the shared links");

        // The holder (session 0) leaves first: session 1 inherits the links,
        // the ledger does not move, conservation holds throughout.
        for (leaving, heir) in [(0u64, 1u64), (1, 2)] {
            match release(&shared, leaving) {
                Response::Released { session } => assert_eq!(session, leaving),
                other => panic!("expected Released, got {other:?}"),
            }
            assert_eq!(
                shared.load.load().map().total_reserved_kbps(),
                booked,
                "survivors keep the forest's one booking"
            );
            let sessions = shared.sessions.lock();
            assert!(
                !sessions.live.get(&heir).unwrap().links.is_empty(),
                "the next member inherits the holder's links"
            );
            drop(sessions);
            assert_conserved(&shared);
        }
        match release(&shared, 2) {
            Response::Released { session } => assert_eq!(session, 2),
            other => panic!("expected Released, got {other:?}"),
        }
        assert!(shared.load.load().map().is_empty(), "last out releases");
        let sessions = shared.sessions.lock();
        assert_eq!(sessions.forest_census(), (0, 0));
        assert!(
            sessions.by_key.is_empty(),
            "the key slot dies with the forest"
        );
    }

    /// A warm hit whose capacity was consumed in the meantime fails
    /// revalidation, evicts the stale entry, and is re-solved cold against
    /// residual capacity — landing on the free route.
    #[test]
    fn a_warm_hit_that_no_longer_fits_is_re_solved_cold() {
        let (mut shared, requirement) = shared_over_twin_routes();
        shared.config.residual = true;
        shared.config.solve_cache = true;
        // Cold open saturates one route (each session's flow fills a full
        // 100 kbps route in this fixture).
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement.clone(),
            Algorithm::Sflow,
            None,
        ) {
            Response::Federated(_) => {}
            other => panic!("expected Federated, got {other:?}"),
        }
        assert_eq!(shared.load.load().max_utilization_permille(), 1000);
        // Tear the forest down while keeping the booking: this is the
        // superseded-forest shape — the cached flow is still filed, but a
        // new tenant can no longer attach and must justify a reservation of
        // its own.
        {
            let mut sessions = shared.sessions.lock();
            sessions.forests.clear();
            sessions.by_key.clear();
            for session in sessions.live.values_mut() {
                session.forest = None;
            }
        }
        let first_selection = shared
            .sessions
            .lock()
            .live
            .values()
            .next()
            .unwrap()
            .flow
            .selection()
            .clone();

        match federate_against(
            &shared,
            shared.snap.load(),
            requirement,
            Algorithm::Sflow,
            None,
        ) {
            Response::Federated(_) => {}
            other => panic!("expected Federated, got {other:?}"),
        }
        let stats = shared.metrics.snapshot(0, 2);
        assert_eq!(
            stats.cache_revalidation_fails, 1,
            "the warm hit no longer fits the residual plane"
        );
        assert_eq!(stats.cache_misses, 1, "only the first open was a miss");
        assert_eq!(stats.cache_hits, 0, "a refused hit is not a hit");
        let sessions = shared.sessions.lock();
        let second = sessions.live.values().nth(1).unwrap();
        assert_ne!(
            *second.flow.selection(),
            first_selection,
            "the cold re-solve steered onto the free route"
        );
        drop(sessions);
        assert_conserved(&shared);
        // The re-solve replaced the evicted entry with the load-aware flow.
        assert_eq!(shared.snap.load().cached_solve_count(), 1);
    }
}
