//! The federation server: acceptor, worker pool, admission queue.
//!
//! Threading model:
//!
//! * one **acceptor** thread owns the `TcpListener`;
//! * one **connection** thread per client reads request frames and writes
//!   response frames (responses stay ordered per connection because the
//!   thread waits for each reply before reading the next frame);
//! * a fixed pool of **worker** threads drains a *bounded* crossbeam job
//!   queue and runs solves/mutations against the published world snapshot.
//!
//! Admission control happens where the connection thread hands a job to the
//! pool: a `try_send` into the bounded queue either enqueues or fails
//! immediately, and a failure is answered with [`Response::Overloaded`] —
//! the request is shed, never buffered. `Stats` and `Shutdown` are handled
//! inline on the connection thread so observability and operability survive
//! overload.
//!
//! Locking: there is none on the solve path. `Federate` loads the current
//! [`WorldSnapshot`](crate::snapshot::WorldSnapshot) from the [`Snap`] cell
//! (an `Arc` clone) and solves against that immutable epoch with zero shared
//! locks held; the per-epoch hop matrix lives inside the snapshot and is
//! built at most once however many solvers race on it. `Mutate` serializes
//! against other mutations on the world mutex, assembles the successor
//! snapshot off to the side, publishes it with one pointer swap and then
//! repairs sessions. A solve overtaken by a mutation is answered
//! [`Response::Stale`] instead of opening a session solved against a world
//! that no longer exists.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use sflow_core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, ServicePathAlgorithm,
};
use sflow_core::repair::repair;
use sflow_core::validate::FlowGraphAuditor;
use sflow_core::{FederationContext, FlowGraph, ServiceRequirement, Solver};
use sflow_runtime::duration_us;

use crate::snapshot::Snap;
use crate::stats::Metrics;
use crate::wire::{read_frame, write_frame};
use crate::world::World;
use crate::{Algorithm, FlowSummary, Request, Response};

/// How a [`serve`] instance is sized and (for tests) slowed down.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue (min 1).
    pub workers: usize,
    /// Capacity of the bounded admission queue; a full queue sheds.
    pub queue_depth: usize,
    /// Hard cap on live sessions; `Federate` beyond it is answered with an
    /// error rather than growing without bound.
    pub max_sessions: usize,
    /// Worker threads for routing-table rebuilds and patches after
    /// mutations; `0` auto-sizes from `available_parallelism`.
    pub route_workers: usize,
    /// Audit every solved or repaired flow graph with
    /// [`FlowGraphAuditor`] and count violations in the server stats
    /// (`serve --audit`). Non-fatal: a violating answer is still served,
    /// but the counter makes it visible.
    pub audit: bool,
    /// Test hook: hold every admitted job this long before solving, so
    /// tests can fill the admission queue deterministically.
    pub debug_delay: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            max_sessions: 16_384,
            route_workers: 0,
            audit: false,
            debug_delay: None,
        }
    }
}

/// A live federation kept by the server for repair after mutations.
struct Session {
    requirement: ServiceRequirement,
    flow: FlowGraph,
    /// The snapshot epoch `flow` was solved (or last repaired) against.
    /// Repair sweeps re-resolve a session against exactly the epoch it was
    /// solved under — a session somehow left behind by an earlier sweep is
    /// dropped rather than silently repaired across a renumbering.
    solved_epoch: u64,
}

#[derive(Default)]
struct Sessions {
    next_id: u64,
    live: BTreeMap<u64, Session>,
}

/// State shared by every thread of one server instance.
struct Shared {
    addr: SocketAddr,
    config: ServerConfig,
    /// The publication cell readers load snapshots from. Never held — a
    /// load is one `Arc` clone and the solve runs against the clone.
    snap: Arc<Snap>,
    /// The mutator. Only `Mutate` jobs take this lock; the read path never
    /// touches it, so mutations serialize exclusively against each other.
    world: Mutex<World>,
    sessions: Mutex<Sessions>,
    /// Live sessions, counted separately from `sessions.live` because a
    /// repair sweep takes the map out of the lock while it re-resolves —
    /// during that window `live.len()` reads 0 even though every swept-out
    /// session is still live from the clients' point of view. Incremented
    /// under the sessions lock when a session opens; decremented only when
    /// a session is truly dropped. Admission and `Stats` read this, never
    /// `live.len()`.
    live_sessions: AtomicUsize,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The loopback address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops accepting, drains the workers and joins every server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the server stops on its own — i.e. until some client
    /// sends [`Request::Shutdown`]. This is what `sflow serve` does.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it.
        let _ = TcpStream::connect(self.shared.addr);
        let _ = acceptor.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One admitted unit of work plus the channel its answer goes back on.
struct Job {
    request: Request,
    reply: Sender<Response>,
}

/// Binds a loopback port and starts serving `world`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(world: World, config: &ServerConfig) -> io::Result<ServerHandle> {
    serve_on("127.0.0.1:0", world, config)
}

/// [`serve`] on an explicit address (`"127.0.0.1:0"` picks a free port).
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_on(addr: &str, mut world: World, config: &ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    world.set_route_workers(config.route_workers);
    let shared = Arc::new(Shared {
        addr: listener.local_addr()?,
        config: *config,
        snap: world.handle(),
        world: Mutex::new(world),
        sessions: Mutex::new(Sessions::default()),
        live_sessions: AtomicUsize::new(0),
        metrics: Metrics::default(),
        shutdown: AtomicBool::new(false),
    });
    let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let jobs = job_rx.clone();
            thread::spawn(move || worker_loop(&shared, &jobs))
        })
        .collect();
    drop(job_rx);

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || {
            for stream in listener.incoming() {
                if shared.shutting_down() {
                    break;
                }
                if let Ok(stream) = stream {
                    let shared = Arc::clone(&shared);
                    let job_tx = job_tx.clone();
                    thread::spawn(move || connection_loop(&shared, &job_tx, stream));
                }
            }
            // No more connections will be admitted; once the connection
            // threads drop their queue clones the workers see disconnect.
            drop(job_tx);
            for worker in workers {
                let _ = worker.join();
            }
        })
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
    })
}

/// Serves one client connection: read a frame, answer it, repeat.
fn connection_loop(shared: &Shared, job_tx: &Sender<Job>, mut stream: TcpStream) {
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutting_down() {
            return;
        }
        let request = match read_frame::<Request>(&mut stream) {
            Ok(Some(request)) => request,
            Ok(None) => return, // client hung up cleanly
            Err(e) if e.is_idle() => {
                continue; // idle tick; re-check the shutdown flag
            }
            Err(e) if e.is_protocol() => {
                // The peer broke framing (oversized prefix, torn frame,
                // garbage JSON). Count it, answer an error if the stream is
                // still writable, and degrade *this connection only* — the
                // workers and every other connection are untouched.
                shared.metrics.wire_error();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error(format!("protocol error: {e}")),
                );
                return;
            }
            Err(_) => return, // dead transport
        };
        let shutting_down = matches!(request, Request::Shutdown);
        let response = dispatch(shared, job_tx, request);
        if write_frame(&mut stream, &response).is_err() || shutting_down {
            return;
        }
    }
}

/// Routes one request: control-plane inline, data-plane through admission.
fn dispatch(shared: &Shared, job_tx: &Sender<Job>, request: Request) -> Response {
    match request {
        // Stats stays answerable under overload: it never takes a queue slot
        // (and, like every read, never waits on a mutation).
        Request::Stats => {
            let epoch = shared.snap.epoch();
            // The counter, not `live.len()`: a repair sweep in flight has
            // the map taken out, but its sessions are still live.
            let sessions = shared.live_sessions.load(Ordering::SeqCst) as u64;
            Response::Stats(shared.metrics.snapshot(epoch, sessions))
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it notices the flag without a new client.
            let _ = TcpStream::connect(shared.addr);
            Response::ShuttingDown
        }
        request => {
            let (reply_tx, reply_rx) = bounded(1);
            match job_tx.try_send(Job {
                request,
                reply: reply_tx,
            }) {
                Ok(()) => reply_rx
                    .recv()
                    .unwrap_or_else(|_| Response::Error("server shutting down".into())),
                Err(TrySendError::Full(_)) => {
                    shared.metrics.shed();
                    Response::Overloaded
                }
                Err(TrySendError::Disconnected(_)) => {
                    Response::Error("server shutting down".into())
                }
            }
        }
    }
}

/// Drains the admission queue until shutdown.
fn worker_loop(shared: &Shared, jobs: &Receiver<Job>) {
    loop {
        match jobs.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let response = execute(shared, job.request);
                let _ = job.reply.send(response);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shared.shutting_down() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Runs one admitted job and accounts its latency.
fn execute(shared: &Shared, request: Request) -> Response {
    let start = Instant::now();
    if let Some(delay) = shared.config.debug_delay {
        thread::sleep(delay);
    }
    let response = match request {
        Request::Federate {
            requirement,
            algorithm,
            hop_limit,
        } => federate(shared, &requirement, algorithm, hop_limit),
        Request::Mutate(mutation) => mutate(shared, &mutation),
        // Handled inline by the connection thread; an admitted copy is a bug
        // in dispatch, answered defensively rather than panicking a worker.
        Request::Stats | Request::Shutdown => Response::Error("control request in queue".into()),
    };
    shared
        .metrics
        .record_latency_us(duration_us(start.elapsed()));
    response
}

/// Solves one requirement against the current snapshot — no shared lock is
/// held anywhere in the solve — and opens a session.
fn federate(
    shared: &Shared,
    spec: &str,
    algorithm: Algorithm,
    hop_limit: Option<usize>,
) -> Response {
    let requirement: ServiceRequirement = match spec.parse() {
        Ok(requirement) => requirement,
        Err(e) => {
            shared.metrics.failed();
            return Response::Error(format!("bad requirement {spec:?}: {e}"));
        }
    };
    // One Arc clone; everything below runs against this immutable epoch,
    // concurrent mutations notwithstanding.
    let snapshot = shared.snap.load();
    federate_against(shared, snapshot, requirement, algorithm, hop_limit)
}

/// The epoch-pinned half of [`federate`]: solves against exactly
/// `snapshot`, then opens a session — unless a mutation overtook the solve,
/// in which case the answer is [`Response::Stale`]. Split out so the race
/// window is testable with a deliberately outdated snapshot.
fn federate_against(
    shared: &Shared,
    snapshot: Arc<crate::snapshot::WorldSnapshot>,
    requirement: ServiceRequirement,
    algorithm: Algorithm,
    hop_limit: Option<usize>,
) -> Response {
    let ctx = snapshot.context();
    let solved = match algorithm {
        Algorithm::Sflow => {
            let solver = match hop_limit {
                Some(limit) => {
                    let (matrix, built) = snapshot.hop_matrix_tracked();
                    if built {
                        shared.metrics.cache_miss();
                    } else {
                        shared.metrics.cache_hit();
                    }
                    Solver::new(&ctx).with_hop_matrix(limit, matrix)
                }
                None => Solver::new(&ctx),
            };
            solver.solve(&requirement)
        }
        Algorithm::Global => GlobalOptimalAlgorithm.federate(&ctx, &requirement),
        Algorithm::Fixed => FixedAlgorithm.federate(&ctx, &requirement),
        Algorithm::ServicePath => ServicePathAlgorithm.federate(&ctx, &requirement),
    };
    let flow = match solved {
        Ok(flow) => flow,
        Err(e) => {
            shared.metrics.failed();
            return Response::Error(e.to_string());
        }
    };
    audit_flow(shared, &ctx, &requirement, &flow);

    let mut sessions = shared.sessions.lock();
    // Epoch check under the sessions lock: repair sweeps also take it, so
    // this decides atomically whether the session will be covered by every
    // future sweep. If a mutation overtook the solve, the answer describes
    // a world that no longer exists — say so instead of storing it.
    let current_epoch = shared.snap.epoch();
    if current_epoch != snapshot.epoch() {
        drop(sessions);
        shared.metrics.stale();
        return Response::Stale {
            solved_epoch: snapshot.epoch(),
            current_epoch,
        };
    }
    // The counter, not `live.len()`: a concurrent repair sweep empties the
    // map while it re-resolves, and the cap must keep counting those
    // sessions or a long sweep admits up to a full extra table. Opens all
    // hold the sessions lock, so check-then-increment cannot over-admit;
    // sweep decrements can only make this check conservative.
    if shared.live_sessions.load(Ordering::SeqCst) >= shared.config.max_sessions {
        shared.metrics.failed();
        return Response::Error("session table full".into());
    }
    let session = sessions.next_id;
    sessions.next_id += 1;
    let summary = FlowSummary {
        session,
        epoch: snapshot.epoch(),
        bandwidth_kbps: flow.quality().bandwidth.as_kbps(),
        latency_us: flow.quality().latency.as_micros(),
        instances: flow.instances().clone(),
    };
    sessions.live.insert(
        session,
        Session {
            requirement,
            flow,
            solved_epoch: snapshot.epoch(),
        },
    );
    shared.live_sessions.fetch_add(1, Ordering::SeqCst);
    shared.metrics.served();
    Response::Federated(summary)
}

/// Under `--audit`, re-derives every answer's invariants from raw overlay
/// links ([`FlowGraphAuditor`]) and counts violations in the server stats.
/// Counting, not fatal: operators watch `audit_violations`, answers still
/// flow.
fn audit_flow(
    shared: &Shared,
    ctx: &FederationContext<'_>,
    requirement: &ServiceRequirement,
    flow: &FlowGraph,
) {
    if !shared.config.audit {
        return;
    }
    let report = FlowGraphAuditor::new(ctx, requirement).audit(flow);
    if !report.is_clean() {
        shared
            .metrics
            .audit_violations(report.violations.len() as u64);
    }
}

/// Applies one mutation and repairs every session against the new epoch —
/// sFlow's agility as a server operation.
///
/// The world mutex serializes mutations *against each other only*; readers
/// load snapshots and never block here. The guard intentionally spans the
/// repair sweep so sweeps from back-to-back mutations cannot interleave —
/// the one sanctioned exception to the no-guard-across-solve invariant,
/// which is why the binding carries an audit allow.
fn mutate(shared: &Shared, mutation: &crate::Mutation) -> Response {
    let mut world = shared.world.lock(); // audit:allow(guard-across-solve)
    let from_epoch = world.epoch();
    let rebuild = match world.apply(mutation) {
        Ok(rebuild) => rebuild,
        Err(e) => {
            shared.metrics.failed();
            return Response::Error(e.to_string());
        }
    };
    shared
        .metrics
        .rebuild(duration_us(rebuild.duration), rebuild.trees_recomputed);
    // `apply` has already published the successor: federates from here on
    // solve at `epoch`, and any solve still in flight at `from_epoch` will
    // answer `Stale` rather than slip into the session table behind us.
    let snapshot = world.snapshot();
    let epoch = snapshot.epoch();
    let ctx = snapshot.context();

    // Sweep the sessions through repair. The map is *taken* out of the
    // sessions lock so the lock itself is never held across a repair solve;
    // federates landing mid-sweep open sessions at the new epoch and merge
    // back untouched (ids stay unique — `next_id` is monotonic and stays in
    // place).
    let taken = std::mem::take(&mut shared.sessions.lock().live);
    let mut kept = BTreeMap::new();
    let mut repaired = 0usize;
    let mut dropped = 0usize;
    for (id, mut session) in taken {
        if session.solved_epoch == epoch {
            // Opened by a federate that loaded the successor snapshot after
            // `apply` published it but before this sweep took the map — it
            // is already current; merge it back untouched.
            kept.insert(id, session);
            continue;
        }
        if session.solved_epoch != from_epoch {
            // Defensive: every sweep repairs sessions solved at exactly the
            // epoch this mutation replaced. A session left behind at some
            // older epoch has already been renumbered past — drop it rather
            // than repair it against a world it was never solved in.
            dropped += 1;
            shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        match repair(&ctx, &session.requirement, &session.flow) {
            Ok(outcome) => {
                audit_flow(shared, &ctx, &session.requirement, &outcome.flow);
                session.flow = outcome.flow;
                session.solved_epoch = epoch;
                kept.insert(id, session);
                repaired += 1;
            }
            Err(_) => {
                dropped += 1;
                shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    shared.sessions.lock().live.extend(kept);
    Response::Mutated {
        epoch,
        repaired,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mutation;
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement};

    /// A `Shared` with no listener behind it: enough to drive the worker
    /// entry points (`federate_against`, `mutate`) directly.
    fn shared_over_diamond() -> Shared {
        let mut world = World::new(diamond_fixture());
        world.set_route_workers(1);
        Shared {
            addr: "127.0.0.1:0".parse().unwrap(),
            config: ServerConfig::default(),
            snap: world.handle(),
            world: Mutex::new(world),
            sessions: Mutex::new(Sessions::default()),
            live_sessions: AtomicUsize::new(0),
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Satellite regression: a solve that a mutation overtakes is answered
    /// with the typed `Stale` response — carrying both epochs — instead of
    /// opening a session solved against a renumbered world.
    #[test]
    fn a_solve_overtaken_by_a_mutation_is_answered_stale() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        // The solver's snapshot load...
        let stale_snapshot = shared.snap.load();
        // ...raced by an instance failure, which renumbers the overlay.
        let victim = stale_snapshot
            .overlay()
            .graph()
            .node_ids()
            .map(|n| stale_snapshot.overlay().instance(n))
            .find(|i| *i != stale_snapshot.source())
            .unwrap();
        match mutate(&shared, &Mutation::FailInstance { instance: victim }) {
            Response::Mutated { epoch: 1, .. } => {}
            other => panic!("expected Mutated at epoch 1, got {other:?}"),
        }

        match federate_against(
            &shared,
            stale_snapshot,
            requirement.clone(),
            Algorithm::Sflow,
            Some(2),
        ) {
            Response::Stale {
                solved_epoch,
                current_epoch,
            } => {
                assert_eq!(solved_epoch, 0);
                assert_eq!(current_epoch, 1);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // No session opened; the stale counter moved; nothing was "served".
        assert_eq!(shared.sessions.lock().live.len(), 0);
        let stats = shared.metrics.snapshot(shared.snap.epoch(), 0);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.served, 0);

        // A fresh load federates normally at the new epoch.
        let fresh = shared.snap.load();
        match federate_against(&shared, fresh, requirement, Algorithm::Sflow, Some(2)) {
            Response::Federated(s) => assert_eq!(s.epoch, 1),
            other => panic!("expected Federated, got {other:?}"),
        }
        assert_eq!(shared.sessions.lock().live.len(), 1);
        assert_eq!(shared.live_sessions.load(Ordering::SeqCst), 1);
    }

    /// Regression: a federate can load the successor snapshot (published by
    /// `World::apply` *before* the sweep takes the sessions map) and open a
    /// session at the new epoch mid-sweep. The sweep must merge it back
    /// untouched — not drop it as "left behind at some older epoch".
    #[test]
    fn a_session_opened_at_the_successor_epoch_survives_the_sweep() {
        let shared = shared_over_diamond();
        let requirement = diamond_requirement();
        // A session legitimately opened at epoch 0 — the sweep's real work.
        let fresh = shared.snap.load();
        match federate_against(&shared, fresh, requirement.clone(), Algorithm::Sflow, None) {
            Response::Federated(s) => assert_eq!(s.epoch, 0),
            other => panic!("expected Federated, got {other:?}"),
        }
        // Emulate the publish-to-sweep race: a session already recorded at
        // the epoch the mutation is about to land on (the federate passed
        // the epoch check because `apply` had published the successor).
        let flow = Solver::new(&shared.snap.load().context())
            .solve(&requirement)
            .unwrap();
        shared.sessions.lock().live.insert(
            99,
            Session {
                requirement: requirement.clone(),
                flow,
                solved_epoch: 1,
            },
        );
        shared.live_sessions.fetch_add(1, Ordering::SeqCst);

        let snapshot = shared.snap.load();
        let victim = snapshot
            .overlay()
            .graph()
            .node_ids()
            .map(|n| snapshot.overlay().instance(n))
            .find(|i| *i != snapshot.source())
            .unwrap();
        let (repaired, dropped) =
            match mutate(&shared, &Mutation::FailInstance { instance: victim }) {
                Response::Mutated {
                    epoch: 1,
                    repaired,
                    dropped,
                } => (repaired, dropped),
                other => panic!("expected Mutated at epoch 1, got {other:?}"),
            };
        // Only the epoch-0 session was swept; the epoch-1 session is
        // neither repaired nor dropped.
        assert_eq!(repaired + dropped, 1);
        let sessions = shared.sessions.lock();
        let survivor = sessions.live.get(&99).expect("epoch-1 session survives");
        assert_eq!(survivor.solved_epoch, 1);
        assert_eq!(
            shared.live_sessions.load(Ordering::SeqCst),
            sessions.live.len(),
            "counter tracks the table once the sweep is done"
        );
    }

    /// Regression: while a repair sweep has the map taken out, admission and
    /// the stats count must still see the swept-out sessions — otherwise a
    /// long sweep admits up to a full extra table and Stats reports ~0.
    #[test]
    fn admission_and_stats_count_sessions_swept_out_for_repair() {
        let mut shared = shared_over_diamond();
        shared.config.max_sessions = 1;
        let requirement = diamond_requirement();
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement.clone(),
            Algorithm::Sflow,
            None,
        ) {
            Response::Federated(_) => {}
            other => panic!("expected Federated, got {other:?}"),
        }
        // Simulate a sweep in progress: the map is taken out of the lock,
        // but its session is still live from the clients' point of view.
        let taken = std::mem::take(&mut shared.sessions.lock().live);
        assert_eq!(shared.live_sessions.load(Ordering::SeqCst), 1);
        match federate_against(
            &shared,
            shared.snap.load(),
            requirement,
            Algorithm::Sflow,
            None,
        ) {
            Response::Error(e) => assert!(e.contains("session table full"), "got {e:?}"),
            other => panic!("expected the session cap to hold mid-sweep, got {other:?}"),
        }
        shared.sessions.lock().live.extend(taken);
        assert_eq!(shared.sessions.lock().live.len(), 1);
    }
}
