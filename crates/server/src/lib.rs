//! A long-lived federation service for service overlay networks.
//!
//! Everything else in this workspace solves one federation at a time and
//! throws the world away; this crate is the shape the ROADMAP north star
//! ("heavy traffic from millions of users") demands — a resident server that
//! *owns* a world and amortises its expensive routing artifacts across
//! requests:
//!
//! * **Snapshot world** — the overlay, [`AllPairs`] table and topology epoch
//!   live in an immutable [`WorldSnapshot`] published through a [`Snap`]
//!   cell ([`snapshot`]). `Federate` requests load the current snapshot and
//!   solve with **no shared lock held**; mutations build the successor
//!   copy-on-write off to the side and publish it with one pointer swap
//!   ([`world`]). Mutations serialize only against each other.
//! * **Shared routing caches** — the [`HopMatrix`] the sFlow horizon needs
//!   lives *inside* each snapshot (built lazily, at most once per epoch) and
//!   is handed to every solver as an `Arc` (via [`Solver::with_hop_matrix`]);
//!   QoS-only mutations carry it forward to the successor epoch.
//! * **Admission control** — a crossbeam worker pool drains a *bounded* job
//!   queue; when the queue is full, requests are shed immediately with
//!   [`Response::Overloaded`] so overload degrades gracefully instead of
//!   ballooning latency ([`server`]).
//! * **Agility** — [`Request::Mutate`] applies a link-QoS update or an
//!   instance failure, publishes the next epoch and re-federates every live
//!   session via [`sflow_core::repair`] — the paper's headline claim made
//!   operational. A solve that a mutation overtakes is answered with the
//!   typed [`Response::Stale`] rather than silently repaired across an
//!   instance-failure renumbering.
//! * **Load plane** — a [`LoadMap`] derives per-link reserved bandwidth
//!   from the live session table (plus a CONGA-style discounted estimator)
//!   and is published as an immutable [`LoadPlane`] through a [`LoadCell`],
//!   the snapshot cell's twin. Federates solve against a **residual**
//!   overlay whose link bandwidths are clamped to `capacity − reserved`
//!   (disable with [`ServerConfig::residual`] = `false`), and a background
//!   rebalancer sweep migrates sessions off links above a utilization
//!   threshold — make-before-break, cheapest movers first ([`load`]).
//! * **Wire protocol** — length-prefixed `serde_json` frames over `std::net`
//!   TCP ([`wire`]), with a small blocking [`Client`] in [`client`].
//!
//! [`AllPairs`]: sflow_routing::AllPairs
//! [`HopMatrix`]: sflow_core::baseline::HopMatrix
//! [`Solver::with_hop_matrix`]: sflow_core::Solver::with_hop_matrix
//!
//! # Quickstart
//!
//! ```
//! use sflow_core::fixtures::diamond_fixture;
//! use sflow_server::{serve, Algorithm, Client, Request, Response, ServerConfig, World};
//!
//! let handle = serve(World::new(diamond_fixture()), &ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! match client.federate("0>1>3, 0>2>3", Algorithm::Sflow, Some(2))? {
//!     Response::Federated(s) => println!("federated at {} kbit/s", s.bandwidth_kbps),
//!     other => panic!("unexpected {other:?}"),
//! }
//! handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sflow_net::{ServiceId, ServiceInstance};

pub mod client;
pub mod load;
pub mod reactor;
mod rebalance;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod wire;
pub mod world;

pub use client::{Client, PipelinedClient};
pub use load::{LinkId, LoadCell, LoadMap, LoadPlane};
pub use server::{serve, serve_on, ServerConfig, ServerHandle};
pub use snapshot::{Snap, SolveKey, WorldSnapshot};
pub use stats::StatsSnapshot;
pub use wire::WireError;
pub use world::World;

/// Which federation algorithm a [`Request::Federate`] should run.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Algorithm {
    /// The paper's sFlow algorithm (horizon from the request's `hop_limit`).
    #[default]
    Sflow,
    /// Exhaustive global optimum (exponential; small worlds only).
    Global,
    /// The greedy "fixed" baseline.
    Fixed,
    /// The service-path (chain-serialising) baseline.
    ServicePath,
}

/// A topology mutation applied by [`Request::Mutate`].
///
/// Instances are addressed by their stable `(service, host)` identity rather
/// than by overlay node index, because failures rebuild the overlay and
/// renumber its nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// Overwrites the QoS of the service link `from → to` (congestion,
    /// re-provisioning).
    SetLinkQos {
        /// Upstream endpoint of the service link.
        from: ServiceInstance,
        /// Downstream endpoint of the service link.
        to: ServiceInstance,
        /// New bottleneck bandwidth, kbit/s.
        bandwidth_kbps: u64,
        /// New latency, microseconds.
        latency_us: u64,
    },
    /// Removes an instance from the overlay (node crash, service withdrawal).
    FailInstance {
        /// The instance that failed.
        instance: ServiceInstance,
    },
}

/// One client request, as carried on the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Federate a service requirement and keep it as a live session.
    Federate {
        /// The requirement as a chain expression, e.g. `"0>1>3, 0>2>3"`
        /// (parsed by `ServiceRequirement::from_str`).
        requirement: String,
        /// Which algorithm to run.
        algorithm: Algorithm,
        /// Overlay-hop horizon for [`Algorithm::Sflow`] (`None` = full view).
        hop_limit: Option<usize>,
    },
    /// Mutate the world: bump the epoch, invalidate caches, repair sessions.
    Mutate(Mutation),
    /// Close a live session, releasing its bandwidth reservations.
    Release {
        /// The session id from the opening [`Response::Federated`].
        session: u64,
    },
    /// Run one rebalancer sweep now (the background thread, if enabled,
    /// runs the same sweep on its interval).
    Rebalance,
    /// Fetch the per-link load ledger: reservations, estimates, residuals.
    LoadMap,
    /// Fetch server counters and latency percentiles.
    Stats,
    /// Ask the server to stop accepting work and exit its loops.
    Shutdown,
}

/// The result of a successful federation, flattened for the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSummary {
    /// Server-assigned session id (stable across repairs).
    pub session: u64,
    /// Topology epoch the flow was solved against.
    pub epoch: u64,
    /// Bottleneck bandwidth of the flow, kbit/s.
    pub bandwidth_kbps: u64,
    /// End-to-end latency of the flow, microseconds.
    pub latency_us: u64,
    /// The selected instance for every required service.
    pub instances: BTreeMap<ServiceId, ServiceInstance>,
}

/// One link's row in the load ledger, as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkLoad {
    /// Upstream endpoint of the service link.
    pub from: ServiceInstance,
    /// Downstream endpoint of the service link.
    pub to: ServiceInstance,
    /// Raw link capacity, kbit/s (`u64::MAX` = unconstrained).
    pub capacity_kbps: u64,
    /// Bandwidth reserved by live sessions, kbit/s.
    pub reserved_kbps: u64,
    /// The DRE-style discounted traffic estimate, kbit/s.
    pub estimate_kbps: u64,
    /// What remains free: `capacity − reserved`, floored at zero.
    pub residual_kbps: u64,
    /// `reserved · 1000 / capacity` (0 for unconstrained links).
    pub utilization_permille: u64,
}

/// The load plane's state, flattened for the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadMapSummary {
    /// The topology epoch the ledger indexes into.
    pub epoch: u64,
    /// Publication counter within the epoch.
    pub version: u64,
    /// The worst per-link utilization, permille.
    pub max_utilization_permille: u64,
    /// Every link with a live reservation, in stable link-id order.
    pub links: Vec<LinkLoad>,
}

/// The envelope every request travels in: a client-assigned id plus the
/// request itself.
///
/// One connection may carry many requests in flight at once (pipelining);
/// responses come back tagged with the same id and **may arrive out of
/// order** — a fast `Stats` behind a slow `Federate` overtakes it. Ids are
/// chosen by the client and only need to be unique among that connection's
/// in-flight requests; the server echoes them without interpretation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Client-assigned correlation id, echoed on the response.
    pub request_id: u64,
    /// The request itself.
    pub request: Request,
}

/// The envelope every response travels in: the originating request's id plus
/// the response itself. See [`RequestFrame`] for the ordering contract.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResponseFrame {
    /// The `request_id` of the [`RequestFrame`] this answers.
    pub request_id: u64,
    /// The response itself.
    pub response: Response,
}

/// One server response, as carried on the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// The federation succeeded.
    Federated(FlowSummary),
    /// The mutation was applied; sessions were repaired or dropped.
    Mutated {
        /// The new topology epoch.
        epoch: u64,
        /// Sessions successfully re-federated over the mutated world.
        repaired: usize,
        /// Sessions that no longer fit and were closed.
        dropped: usize,
    },
    /// The solve completed, but a mutation published a newer epoch before
    /// the session could be opened. The answer was solved against a world
    /// that no longer exists (an instance failure renumbers the overlay, so
    /// the flow cannot be trusted to translate); the client should re-issue
    /// the federate against the current epoch.
    Stale {
        /// The epoch the discarded answer was solved against.
        solved_epoch: u64,
        /// The epoch published by the time the session would have opened.
        current_epoch: u64,
    },
    /// The session was closed and its reservations released.
    Released {
        /// The closed session's id.
        session: u64,
    },
    /// One rebalancer sweep completed.
    Rebalanced {
        /// Sessions migrated to cheaper paths this sweep.
        migrations: usize,
        /// Movers that failed to re-solve or did not improve the world.
        migration_failures: usize,
        /// The worst per-link utilization after the sweep, permille.
        max_utilization_permille: u64,
    },
    /// The per-link load ledger.
    LoadMap(LoadMapSummary),
    /// Server counters.
    Stats(StatsSnapshot),
    /// The admission queue was full; the request was shed, not queued.
    Overloaded,
    /// Acknowledges [`Request::Shutdown`].
    ShuttingDown,
    /// The request was admitted but could not be served (parse error,
    /// unsatisfiable requirement, unknown instance, …).
    Error(String),
}
