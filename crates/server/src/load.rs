//! The load plane: per-link reservation accounting and the residual-capacity
//! routing view the server federates against.
//!
//! Three pieces, mirroring the snapshot world ([`crate::snapshot`]):
//!
//! * [`LoadMap`] — per-link **reserved** bandwidth derived exactly from the
//!   live session table (a session opening adds its bottleneck bandwidth to
//!   every overlay link each of its streams crosses; closing subtracts it),
//!   plus a DRE-style **discounted estimator** in the spirit of CONGA:
//!   incremented when a session opens, decayed `X ← X·(1−α)` on every
//!   rebalancer tick. The reserved column is the ground truth the residual
//!   view clamps with; the estimate is observability — it remembers recent
//!   churn after the reservations are gone.
//! * [`LoadPlane`] — one immutable publication of the load state for an
//!   epoch: the map, the raw overlay it indexes into, a **clamped** overlay
//!   clone whose link bandwidths are `capacity − reserved`, and a routing
//!   table patched over the clamped weights. Solving against
//!   [`LoadPlane::context`] federates new requests against what is actually
//!   free. Deriving a successor ([`LoadPlane::with_changes`]) patches only
//!   the trees the touched links dirty, exactly like a QoS mutation.
//! * [`LoadCell`] — the publication cell, a twin of
//!   [`Snap`](crate::snapshot::Snap): readers clone an `Arc`, writers swap a
//!   pointer. Every plane mutation in the server happens under the sessions
//!   lock, so the map can never drift from the session table it mirrors
//!   (the conservation property test in this module pins that down).
//!
//! Capacities of [`Bandwidth::INFINITE`] (co-location identity links) are
//! never clamped and report zero utilization — booking traffic onto a host's
//! own loopback is free by construction.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use parking_lot::Mutex;
use sflow_core::{FederationContext, FlowGraph, OwnedFederationContext};
use sflow_graph::NodeIx;
use sflow_net::{OverlayGraph, ServiceInstance};
use sflow_routing::{AllPairs, Bandwidth, EdgeChange, Qos};

use crate::snapshot::WorldSnapshot;

/// A service link, addressed by its stable endpoint identities (overlay node
/// indices are renumbered by instance failures; `(service, host)` pairs are
/// not).
pub type LinkId = (ServiceInstance, ServiceInstance);

/// Fixed-point shift for the discounted estimator: estimates are kept in
/// units of `kbps / 256` so repeated decay does not collapse small loads to
/// zero in one tick.
const DRE_SHIFT: u32 = 8;

/// The decay exponent: one tick multiplies every estimate by `1 − 2⁻³`
/// (α = 1/8), CONGA's shape for a cheaply computed moving average.
const DRE_ALPHA_SHIFT: u32 = 3;

/// Per-link load ledger: exact reservations plus the discounted estimate.
#[derive(Clone, Debug, Default)]
pub struct LoadMap {
    /// Reserved bandwidth per link, kbit/s. An entry exists iff some live
    /// session reserves on the link.
    reserved: BTreeMap<LinkId, u64>,
    /// Discounted traffic estimate per link, fixed-point `kbps << 8`.
    estimate: BTreeMap<LinkId, u64>,
}

impl LoadMap {
    /// A ledger recomputed from scratch out of a session table's recorded
    /// reservations — no estimator history (pair with [`adopt_estimates`]
    /// to carry it over from the outgoing ledger).
    ///
    /// [`adopt_estimates`]: LoadMap::adopt_estimates
    pub fn from_reservations<I: IntoIterator<Item = (LinkId, u64)>>(iter: I) -> LoadMap {
        let mut reserved: BTreeMap<LinkId, u64> = BTreeMap::new();
        for (link, kbps) in iter {
            if kbps > 0 {
                *reserved.entry(link).or_insert(0) += kbps;
            }
        }
        LoadMap {
            reserved,
            estimate: BTreeMap::new(),
        }
    }

    /// Books `kbps` on `link` (a session opening or migrating in) and bumps
    /// the discounted estimate.
    pub fn open(&mut self, link: LinkId, kbps: u64) {
        if kbps == 0 {
            return;
        }
        *self.reserved.entry(link).or_insert(0) += kbps;
        *self.estimate.entry(link).or_insert(0) += kbps << DRE_SHIFT;
    }

    /// Releases `kbps` on `link` (a session closing or migrating out).
    /// Saturating: releasing more than is booked clears the entry rather
    /// than underflowing — the conservation test proves this never happens
    /// through the server paths. The estimate is left to decay on its own;
    /// that is the point of a *discounted* estimator.
    pub fn release(&mut self, link: LinkId, kbps: u64) {
        if let Some(slot) = self.reserved.get_mut(&link) {
            *slot = slot.saturating_sub(kbps);
            if *slot == 0 {
                self.reserved.remove(&link);
            }
        }
    }

    /// One DRE tick: every estimate decays by `X ← X·(1−2⁻³)`; entries that
    /// reach zero are dropped.
    pub fn decay(&mut self) {
        self.estimate.retain(|_, x| {
            *x -= *x >> DRE_ALPHA_SHIFT;
            // A value below 2³ decays by zero per tick and would linger
            // forever; call it drained.
            *x >= (1 << DRE_ALPHA_SHIFT)
        });
    }

    /// Reserved bandwidth on `link`, kbit/s (0 when no session crosses it).
    pub fn reserved_kbps(&self, link: LinkId) -> u64 {
        self.reserved.get(&link).copied().unwrap_or(0)
    }

    /// The discounted estimate on `link`, kbit/s.
    pub fn estimate_kbps(&self, link: LinkId) -> u64 {
        self.estimate.get(&link).copied().unwrap_or(0) >> DRE_SHIFT
    }

    /// Total reserved bandwidth across all links — the conservation
    /// invariant compares this against the session table.
    pub fn total_reserved_kbps(&self) -> u64 {
        self.reserved.values().sum()
    }

    /// Iterates `(link, reserved kbps)` over every booked link.
    pub fn iter_reserved(&self) -> impl Iterator<Item = (LinkId, u64)> + '_ {
        self.reserved.iter().map(|(&l, &k)| (l, k))
    }

    /// `true` when no session reserves anything.
    pub fn is_empty(&self) -> bool {
        self.reserved.is_empty()
    }

    /// Carries the discounted estimates of `prior` into this map — used
    /// when a topology mutation rebuilds the ledger from the repaired
    /// session table: reservations are recomputed exactly, but the
    /// estimator's memory of recent churn should survive the epoch.
    pub fn adopt_estimates(&mut self, prior: &LoadMap) {
        for (&link, &x) in &prior.estimate {
            *self.estimate.entry(link).or_insert(0) += x;
        }
    }
}

/// The per-link reservations of one flow, in stable link identities: the
/// flow's bottleneck bandwidth for every stream crossing the link. This is
/// what a session records when it opens and releases when it closes.
pub fn links_of(flow: &FlowGraph, overlay: &OverlayGraph) -> Vec<(LinkId, u64)> {
    flow.link_loads()
        .into_iter()
        .map(|((from, to), bw)| ((overlay.instance(from), overlay.instance(to)), bw.as_kbps()))
        .collect()
}

/// One immutable publication of the load state for a topology epoch.
#[derive(Debug)]
pub struct LoadPlane {
    /// The topology epoch the plane indexes into (link → node resolution is
    /// only valid against this epoch's overlay numbering).
    epoch: u64,
    /// Monotonic per-epoch publication counter, for observability.
    version: u64,
    map: LoadMap,
    /// The epoch's raw overlay — uncapped capacities.
    raw: Arc<OverlayGraph>,
    /// The residual view: the same overlay with every booked link's
    /// bandwidth clamped to `capacity − reserved`. Shares the raw `Arc`
    /// while nothing is booked.
    clamped: Arc<OverlayGraph>,
    /// Shortest-widest table over the clamped weights, patched
    /// incrementally as reservations move.
    table: Arc<AllPairs>,
    source_node: NodeIx,
}

impl LoadPlane {
    /// The empty plane for a fresh epoch: nothing reserved, so the clamped
    /// view *is* the raw overlay and the table is shared with the snapshot
    /// by pointer — publishing a new epoch costs two `Arc` clones.
    pub fn fresh(snapshot: &WorldSnapshot) -> Self {
        LoadPlane {
            epoch: snapshot.epoch(),
            version: 0,
            map: LoadMap::default(),
            raw: snapshot.overlay_arc(),
            clamped: snapshot.overlay_arc(),
            table: snapshot.all_pairs_arc(),
            source_node: snapshot.source_node(),
        }
    }

    /// Rebuilds the plane for `snapshot` from a ledger recomputed out of
    /// the (already repaired) session table — the epoch-crossing path.
    /// Links whose endpoints no longer exist are dropped from the ledger;
    /// every surviving reservation is clamped into a fresh view patched
    /// from the snapshot's own table.
    pub fn rebased(snapshot: &WorldSnapshot, mut map: LoadMap, workers: usize) -> Self {
        let raw = snapshot.overlay_arc();
        let live: Vec<(LinkId, u64)> = map.iter_reserved().collect();
        let mut clamped = (*raw).clone();
        let mut changes = Vec::new();
        for (link, kbps) in live {
            match clamp_link(&mut clamped, &raw, link, kbps) {
                Some(change) => changes.push(change),
                None => {
                    // The link died with the mutation (its sessions were
                    // dropped or rerouted); forget the orphaned entry.
                    map.release(link, kbps);
                }
            }
        }
        let changes: Vec<EdgeChange> = changes.into_iter().filter(|c| !c.is_noop()).collect();
        let (clamped, table) = if changes.is_empty() {
            (snapshot.overlay_arc(), snapshot.all_pairs_arc())
        } else {
            let (table, _) = snapshot
                .all_pairs()
                .patched_with(clamped.graph(), &changes, workers);
            (Arc::new(clamped), Arc::new(table))
        };
        LoadPlane {
            epoch: snapshot.epoch(),
            version: 0,
            map,
            raw,
            clamped,
            table,
            source_node: snapshot.source_node(),
        }
    }

    /// Derives the successor plane after `opens` and `releases` (each a
    /// `(link, kbps)` list). Only the touched links are re-clamped, and the
    /// routing table is patched — the same incremental machinery a QoS
    /// mutation uses, so the cost scales with how many trees the changed
    /// links dirty, not with the world.
    #[must_use]
    pub fn with_changes(
        &self,
        opens: &[(LinkId, u64)],
        releases: &[(LinkId, u64)],
        workers: usize,
    ) -> LoadPlane {
        let mut map = self.map.clone();
        let mut touched = BTreeSet::new();
        for &(link, kbps) in opens {
            map.open(link, kbps);
            touched.insert(link);
        }
        for &(link, kbps) in releases {
            map.release(link, kbps);
            touched.insert(link);
        }
        let mut clamped = (*self.clamped).clone();
        let mut changes = Vec::new();
        for link in touched {
            if let Some(change) = clamp_link(&mut clamped, &self.raw, link, map.reserved_kbps(link))
            {
                if !change.is_noop() {
                    changes.push(change);
                }
            }
        }
        let (clamped, table) = if changes.is_empty() {
            (Arc::clone(&self.clamped), Arc::clone(&self.table))
        } else {
            let (table, _) = self.table.patched_with(clamped.graph(), &changes, workers);
            (Arc::new(clamped), Arc::new(table))
        };
        LoadPlane {
            epoch: self.epoch,
            version: self.version + 1,
            map,
            raw: Arc::clone(&self.raw),
            clamped,
            table,
            source_node: self.source_node,
        }
    }

    /// The successor plane after one DRE tick. Estimates do not feed the
    /// clamp, so this never patches the routing table.
    #[must_use]
    pub fn decayed(&self) -> LoadPlane {
        let mut map = self.map.clone();
        map.decay();
        LoadPlane {
            epoch: self.epoch,
            version: self.version + 1,
            map,
            raw: Arc::clone(&self.raw),
            clamped: Arc::clone(&self.clamped),
            table: Arc::clone(&self.table),
            source_node: self.source_node,
        }
    }

    /// The topology epoch this plane indexes into.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The publication counter within this epoch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The reservation ledger.
    pub fn map(&self) -> &LoadMap {
        &self.map
    }

    /// The residual-capacity overlay (link bandwidths are
    /// `capacity − reserved`).
    pub fn clamped_overlay(&self) -> &OverlayGraph {
        &self.clamped
    }

    /// A context that federates against residual capacity: the clamped
    /// overlay and its patched table, pinned to this plane's epoch.
    pub fn context(&self) -> OwnedFederationContext {
        FederationContext::from_arcs(
            Arc::clone(&self.clamped),
            Arc::clone(&self.table),
            self.source_node,
        )
    }

    /// `link`'s raw capacity, if it exists in this epoch.
    pub fn capacity(&self, link: LinkId) -> Option<Bandwidth> {
        let from = self.raw.node_of(link.0)?;
        let to = self.raw.node_of(link.1)?;
        let e = self.raw.graph().find_edge(from, to)?;
        Some(self.raw.graph().edge(e).bandwidth)
    }

    /// What is still free on `link`: `capacity − reserved`, floored at zero.
    pub fn residual_kbps(&self, link: LinkId) -> u64 {
        let Some(capacity) = self.capacity(link) else {
            return 0;
        };
        capacity
            .saturating_sub(Bandwidth::kbps(self.map.reserved_kbps(link)))
            .as_kbps()
    }

    /// `true` if `links` — a flow's per-link reservations, as produced by
    /// [`links_of`] — still fit into residual capacity link by link. This
    /// is the cheap feasibility check behind solve-cache revalidation: a
    /// cached flow may only be served if every link it would reserve on has
    /// at least its demand still free. Links absent from this epoch's
    /// overlay fail the check (their residual reads zero).
    pub fn fits(&self, links: &[(LinkId, u64)]) -> bool {
        links
            .iter()
            .all(|&(link, need)| self.residual_kbps(link) >= need)
    }

    /// `link`'s utilization in permille (`reserved · 1000 / capacity`).
    /// Infinite capacity is always 0‰; an over-booked link reads over
    /// 1000‰; a reservation on a zero-capacity link saturates.
    pub fn utilization_permille(&self, link: LinkId) -> u64 {
        let reserved = self.map.reserved_kbps(link);
        if reserved == 0 {
            return 0;
        }
        match self.capacity(link) {
            None => 0,
            Some(Bandwidth::INFINITE) => 0,
            Some(c) if c == Bandwidth::ZERO => u64::MAX,
            Some(c) => reserved.saturating_mul(1000) / c.as_kbps(),
        }
    }

    /// The worst utilization across every booked link — the headline load
    /// statistic and the rebalancer's convergence measure.
    pub fn max_utilization_permille(&self) -> u64 {
        self.map
            .iter_reserved()
            .map(|(link, _)| self.utilization_permille(link))
            .max()
            .unwrap_or(0)
    }

    /// Every booked link whose utilization exceeds `threshold_permille` —
    /// the rebalancer's work list.
    pub fn hot_links(&self, threshold_permille: u64) -> BTreeSet<LinkId> {
        self.map
            .iter_reserved()
            .filter(|&(link, _)| self.utilization_permille(link) > threshold_permille)
            .map(|(link, _)| link)
            .collect()
    }
}

/// Writes `capacity − reserved` into `clamped`'s copy of `link`, reading
/// the raw capacity from `raw`. `None` when the link does not exist in
/// this epoch. Infinite capacity is never clamped.
fn clamp_link(
    clamped: &mut OverlayGraph,
    raw: &OverlayGraph,
    link: LinkId,
    reserved_kbps: u64,
) -> Option<EdgeChange> {
    let from = raw.node_of(link.0)?;
    let to = raw.node_of(link.1)?;
    let e = raw.graph().find_edge(from, to)?;
    let raw_qos = *raw.graph().edge(e);
    let next = Qos::new(
        raw_qos
            .bandwidth
            .saturating_sub(Bandwidth::kbps(reserved_kbps)),
        raw_qos.latency,
    );
    clamped.update_link_qos(from, to, next)
}

/// The load plane's publication cell — a twin of
/// [`Snap`](crate::snapshot::Snap): a load is one `Arc` clone, a publish is
/// one pointer store. Writers (session open/close, rebalancer, epoch
/// rebase) all mutate under the sessions lock, so publications are ordered
/// by construction; unlike snapshot epochs, versions restart at every
/// rebase, so the cell does not assert monotonicity itself.
#[derive(Debug)]
pub struct LoadCell {
    current: Mutex<Arc<LoadPlane>>,
}

impl LoadCell {
    /// A cell publishing `plane` as the current load state.
    pub fn new(plane: Arc<LoadPlane>) -> Self {
        LoadCell {
            current: Mutex::new(plane),
        }
    }

    /// The current plane. Constant-time; never blocks on a patch.
    pub fn load(&self) -> Arc<LoadPlane> {
        Arc::clone(&self.current.lock())
    }

    /// Publishes `next` as the current plane.
    pub fn publish(&self, next: Arc<LoadPlane>) {
        *self.current.lock() = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement};
    use sflow_core::Solver;
    use std::sync::Arc;

    fn snapshot() -> WorldSnapshot {
        let fx = diamond_fixture();
        WorldSnapshot::new(Arc::new(fx.overlay), Arc::new(fx.all_pairs), fx.source, 0)
    }

    fn solve_on(plane: &LoadPlane) -> FlowGraph {
        Solver::new(&plane.context())
            .solve(&diamond_requirement())
            .unwrap()
    }

    #[test]
    fn a_fresh_plane_shares_the_snapshot_by_pointer() {
        let snap = snapshot();
        let plane = LoadPlane::fresh(&snap);
        assert_eq!(plane.epoch(), 0);
        assert!(plane.map().is_empty());
        assert_eq!(plane.max_utilization_permille(), 0);
        // Nothing booked: the clamped view is the raw overlay itself.
        assert!(Arc::ptr_eq(&plane.raw, &plane.clamped));
    }

    #[test]
    fn opening_a_session_clamps_exactly_its_links() {
        let snap = snapshot();
        let plane = LoadPlane::fresh(&snap);
        let flow = solve_on(&plane);
        let links = links_of(&flow, snap.overlay());
        assert!(!links.is_empty());

        let booked = plane.with_changes(&links, &[], 1);
        assert_eq!(booked.version(), 1);
        let per_link: BTreeMap<LinkId, u64> = sum_links(&links);
        for (&link, &kbps) in &per_link {
            assert_eq!(booked.map().reserved_kbps(link), kbps);
            let capacity = booked.capacity(link).unwrap();
            if capacity == Bandwidth::INFINITE {
                assert_eq!(booked.utilization_permille(link), 0);
            } else {
                assert_eq!(
                    booked.residual_kbps(link),
                    capacity.as_kbps().saturating_sub(kbps)
                );
            }
        }
        assert_eq!(
            booked.map().total_reserved_kbps(),
            links.iter().map(|&(_, k)| k).sum::<u64>()
        );

        // Release closes the loop: the ledger returns to empty and the
        // residual view returns to raw capacities.
        let released = booked.with_changes(&[], &links, 1);
        assert!(released.map().is_empty());
        assert_eq!(released.max_utilization_permille(), 0);
        for &link in per_link.keys() {
            assert_eq!(
                released.residual_kbps(link),
                released.capacity(link).unwrap().as_kbps()
            );
        }
    }

    #[test]
    fn the_estimator_decays_but_reservations_do_not() {
        let mut map = LoadMap::default();
        let link = {
            let snap = snapshot();
            let overlay = snap.overlay();
            let n: Vec<_> = overlay.graph().node_ids().collect();
            (overlay.instance(n[0]), overlay.instance(n[1]))
        };
        map.open(link, 100);
        assert_eq!(map.reserved_kbps(link), 100);
        assert_eq!(map.estimate_kbps(link), 100);
        for _ in 0..8 {
            map.decay();
        }
        assert_eq!(map.reserved_kbps(link), 100, "reservations are exact");
        let decayed = map.estimate_kbps(link);
        assert!(
            decayed < 100 && decayed > 0,
            "estimate decays smoothly, got {decayed}"
        );
        // Release clears the reservation; the estimate keeps decaying and
        // eventually drains entirely.
        map.release(link, 100);
        assert_eq!(map.reserved_kbps(link), 0);
        for _ in 0..200 {
            map.decay();
        }
        assert_eq!(map.estimate_kbps(link), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn hot_links_and_max_utilization_track_the_threshold() {
        let snap = snapshot();
        let plane = LoadPlane::fresh(&snap);
        let flow = solve_on(&plane);
        let links = links_of(&flow, snap.overlay());
        // Book the flow ten times over: every finite-capacity link it
        // crosses goes hot.
        let mut booked = plane;
        for _ in 0..10 {
            booked = booked.with_changes(&links, &[], 1);
        }
        let hot = booked.hot_links(900);
        assert!(!hot.is_empty());
        assert!(booked.max_utilization_permille() > 1000, "over-booked");
        for link in &hot {
            assert_ne!(booked.capacity(*link), Some(Bandwidth::INFINITE));
        }
    }

    #[test]
    fn residual_routing_steers_away_from_booked_links() {
        // The diamond has two disjoint intermediate routes; booking the
        // preferred one must flip the solver to the other.
        let snap = snapshot();
        let plane = LoadPlane::fresh(&snap);
        let first = solve_on(&plane);
        let links = links_of(&first, snap.overlay());
        let booked = plane.with_changes(&links, &[], 1);
        let second = solve_on(&booked);
        assert_ne!(
            first.selection(),
            second.selection(),
            "with the first route booked, the solver must pick new instances"
        );
        // And the rerouted flow still has real bandwidth.
        assert!(second.quality().bandwidth > Bandwidth::ZERO);
    }

    #[test]
    fn rebased_planes_drop_orphaned_links_and_keep_live_ones() {
        let snap = snapshot();
        let plane = LoadPlane::fresh(&snap);
        let flow = solve_on(&plane);
        let links = links_of(&flow, snap.overlay());
        let booked = plane.with_changes(&links, &[], 1);

        // Rebase onto the same epoch: everything survives, and the clamp
        // is identical.
        let rebased = LoadPlane::rebased(&snap, booked.map().clone(), 1);
        assert_eq!(
            rebased.map().total_reserved_kbps(),
            booked.map().total_reserved_kbps()
        );
        for (link, _) in booked.map().iter_reserved() {
            assert_eq!(rebased.residual_kbps(link), booked.residual_kbps(link));
        }

        // A ledger mentioning a link that does not exist is scrubbed.
        let mut orphaned = booked.map().clone();
        let bogus = (
            ServiceInstance::new(sflow_net::ServiceId::new(7), sflow_net::HostId::new(9)),
            ServiceInstance::new(sflow_net::ServiceId::new(8), sflow_net::HostId::new(9)),
        );
        orphaned.open(bogus, 5_000);
        let scrubbed = LoadPlane::rebased(&snap, orphaned, 1);
        assert_eq!(scrubbed.map().reserved_kbps(bogus), 0);
        assert_eq!(
            scrubbed.map().total_reserved_kbps(),
            booked.map().total_reserved_kbps()
        );
    }

    #[test]
    fn the_cell_publishes_like_snap() {
        let snap = snapshot();
        let cell = LoadCell::new(Arc::new(LoadPlane::fresh(&snap)));
        assert_eq!(cell.load().version(), 0);
        let next = Arc::new(cell.load().decayed());
        cell.publish(next);
        assert_eq!(cell.load().version(), 1);
    }

    fn sum_links(links: &[(LinkId, u64)]) -> BTreeMap<LinkId, u64> {
        let mut out = BTreeMap::new();
        for &(link, kbps) in links {
            *out.entry(link).or_insert(0) += kbps;
        }
        out
    }
}
