//! A small blocking client for the federation wire protocol.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{read_frame, write_frame};
use crate::{Algorithm, LoadMapSummary, Mutation, Request, Response, StatsSnapshot};

/// One blocking connection to a federation server.
///
/// Requests are answered in order on the connection, so a `Client` is a
/// plain sequential handle; open one per thread for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server (e.g. the address from
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O or framing errors; a server that hangs up before answering
    /// surfaces as `UnexpectedEof`.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, request)?;
        read_frame(&mut self.stream)?.ok_or_else(|| io::ErrorKind::UnexpectedEof.into())
    }

    /// Federates `requirement` (a chain expression such as `"0>1>3, 0>2>3"`).
    ///
    /// # Errors
    ///
    /// Transport errors only; federation failures come back as
    /// [`Response::Error`].
    pub fn federate(
        &mut self,
        requirement: &str,
        algorithm: Algorithm,
        hop_limit: Option<usize>,
    ) -> io::Result<Response> {
        self.request(&Request::Federate {
            requirement: requirement.to_owned(),
            algorithm,
            hop_limit,
        })
    }

    /// Applies a topology mutation.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn mutate(&mut self, mutation: Mutation) -> io::Result<Response> {
        self.request(&Request::Mutate(mutation))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the server answers with
    /// anything but `Stats` (a protocol violation).
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Closes a live session, releasing its bandwidth reservations.
    ///
    /// # Errors
    ///
    /// Transport errors only; an unknown session comes back as
    /// [`Response::Error`].
    pub fn release(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Release { session })
    }

    /// Runs one rebalancer sweep now.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn rebalance(&mut self) -> io::Result<Response> {
        self.request(&Request::Rebalance)
    }

    /// Fetches the per-link load ledger.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the server answers with
    /// anything but `LoadMap` (a protocol violation).
    pub fn load_map(&mut self) -> io::Result<LoadMapSummary> {
        match self.request(&Request::LoadMap)? {
            Response::LoadMap(summary) => Ok(summary),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected LoadMap, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::Shutdown)
    }
}
