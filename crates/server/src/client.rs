//! Clients for the federation wire protocol: a pipelined connection and a
//! blocking convenience wrapper.
//!
//! The wire carries [`RequestFrame`] envelopes; responses come back tagged
//! with the request's id and — against a reactor server — possibly out of
//! order. [`PipelinedClient`] exposes that directly: [`send`] many frames,
//! then take answers as they arrive with [`recv_any`] (or wait for one
//! specific id with [`recv`], which stashes overtakers). [`Client`] wraps it
//! one-request-at-a-time for callers that want the old blocking call shape.
//!
//! Sends are **corked**: [`send`] stages the encoded frame in an outbox and
//! the bytes hit the socket on the next [`recv_any`]/[`recv`] (or an
//! explicit [`flush`]). A depth-N burst therefore costs one write syscall,
//! not N — that batching, mirrored by the server's staged write buffer on
//! the way back, is where pipelined throughput comes from. Reads are
//! buffered for the same reason.
//!
//! [`send`]: PipelinedClient::send
//! [`recv_any`]: PipelinedClient::recv_any
//! [`recv`]: PipelinedClient::recv
//! [`flush`]: PipelinedClient::flush

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{encode_frame, read_frame};
use crate::{
    Algorithm, LoadMapSummary, Mutation, Request, RequestFrame, Response, ResponseFrame,
    StatsSnapshot,
};

/// One connection carrying many requests in flight.
///
/// Ids are assigned by the client, monotonically from 1; id 0 is reserved
/// for server-generated errors not attributable to any request (protocol
/// violations).
#[derive(Debug)]
pub struct PipelinedClient {
    stream: BufReader<TcpStream>,
    /// Encoded frames staged by [`send`] and not yet written.
    ///
    /// [`send`]: PipelinedClient::send
    outbox: Vec<u8>,
    next_id: u64,
    in_flight: usize,
    /// Responses read while waiting for a specific id in [`recv`].
    ///
    /// [`recv`]: PipelinedClient::recv
    stashed: VecDeque<ResponseFrame>,
}

impl PipelinedClient {
    /// Connects to a server (e.g. the address from
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            stream: BufReader::new(stream),
            outbox: Vec::new(),
            next_id: 1,
            in_flight: 0,
            stashed: VecDeque::new(),
        })
    }

    /// Stages one request in the outbox without waiting for its response;
    /// returns the assigned `request_id`. The frame reaches the wire on the
    /// next [`PipelinedClient::recv_any`]/[`PipelinedClient::recv`] or an
    /// explicit [`PipelinedClient::flush`].
    ///
    /// # Errors
    ///
    /// Encoding errors (an oversized request).
    pub fn send(&mut self, request: &Request) -> io::Result<u64> {
        let request_id = self.next_id;
        let bytes = encode_frame(&RequestFrame {
            request_id,
            request: request.clone(),
        })
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.next_id += 1;
        self.outbox.extend_from_slice(&bytes);
        self.in_flight += 1;
        Ok(request_id)
    }

    /// Writes every staged frame to the socket now.
    ///
    /// # Errors
    ///
    /// I/O errors from the transport.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.outbox.is_empty() {
            self.stream.get_mut().write_all(&self.outbox)?;
            self.outbox.clear();
        }
        Ok(())
    }

    /// Requests sent whose responses have not yet been received (staged
    /// frames included).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Blocks for the next response in arrival order, whichever request it
    /// answers, flushing staged sends first. Stashed responses (set aside
    /// by [`PipelinedClient::recv`]) are drained before the socket.
    ///
    /// # Errors
    ///
    /// I/O or framing errors; a server that hangs up with requests
    /// outstanding surfaces as `UnexpectedEof`.
    pub fn recv_any(&mut self) -> io::Result<ResponseFrame> {
        if let Some(frame) = self.stashed.pop_front() {
            self.in_flight = self.in_flight.saturating_sub(1);
            return Ok(frame);
        }
        self.flush()?;
        let frame: ResponseFrame = read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
        self.in_flight = self.in_flight.saturating_sub(1);
        Ok(frame)
    }

    /// Blocks for the response to one specific request, flushing staged
    /// sends first and stashing any other response that arrives before it
    /// (later [`PipelinedClient::recv_any`] or `recv` calls see those
    /// before touching the socket again).
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::recv_any`]. An id that was never sent (or was
    /// already received) blocks until the server hangs up.
    pub fn recv(&mut self, request_id: u64) -> io::Result<Response> {
        let at = self.stashed.iter().position(|f| f.request_id == request_id);
        if let Some(frame) = at.and_then(|at| self.stashed.remove(at)) {
            self.in_flight = self.in_flight.saturating_sub(1);
            return Ok(frame.response);
        }
        self.flush()?;
        loop {
            let frame: ResponseFrame = read_frame(&mut self.stream)?
                .ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof))?;
            if frame.request_id == request_id {
                self.in_flight = self.in_flight.saturating_sub(1);
                return Ok(frame.response);
            }
            self.stashed.push_back(frame);
        }
    }
}

/// One blocking connection to a federation server: each call sends a single
/// request and waits for its answer. A compatibility wrapper over
/// [`PipelinedClient`] — the wire protocol is identical, this handle just
/// never has more than one frame in flight.
#[derive(Debug)]
pub struct Client {
    inner: PipelinedClient,
}

impl Client {
    /// Connects to a server (e.g. the address from
    /// [`ServerHandle::addr`](crate::ServerHandle::addr)).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Client {
            inner: PipelinedClient::connect(addr)?,
        })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// I/O or framing errors; a server that hangs up before answering
    /// surfaces as `UnexpectedEof`.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let id = self.inner.send(request)?;
        self.inner.recv(id)
    }

    /// Federates `requirement` (a chain expression such as `"0>1>3, 0>2>3"`).
    ///
    /// # Errors
    ///
    /// Transport errors only; federation failures come back as
    /// [`Response::Error`].
    pub fn federate(
        &mut self,
        requirement: &str,
        algorithm: Algorithm,
        hop_limit: Option<usize>,
    ) -> io::Result<Response> {
        self.request(&Request::Federate {
            requirement: requirement.to_owned(),
            algorithm,
            hop_limit,
        })
    }

    /// Applies a topology mutation.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn mutate(&mut self, mutation: Mutation) -> io::Result<Response> {
        self.request(&Request::Mutate(mutation))
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the server answers with
    /// anything but `Stats` (a protocol violation).
    pub fn stats(&mut self) -> io::Result<StatsSnapshot> {
        match self.request(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Stats, got {other:?}"),
            )),
        }
    }

    /// Closes a live session, releasing its bandwidth reservations.
    ///
    /// # Errors
    ///
    /// Transport errors only; an unknown session comes back as
    /// [`Response::Error`].
    pub fn release(&mut self, session: u64) -> io::Result<Response> {
        self.request(&Request::Release { session })
    }

    /// Runs one rebalancer sweep now.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn rebalance(&mut self) -> io::Result<Response> {
        self.request(&Request::Rebalance)
    }

    /// Fetches the per-link load ledger.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the server answers with
    /// anything but `LoadMap` (a protocol violation).
    pub fn load_map(&mut self) -> io::Result<LoadMapSummary> {
        match self.request(&Request::LoadMap)? {
            Response::LoadMap(summary) => Ok(summary),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected LoadMap, got {other:?}"),
            )),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(&Request::Shutdown)
    }

    /// The underlying pipelined connection, for callers that start blocking
    /// and then want depth (the CLI's `request --concurrency N`).
    pub fn into_pipelined(self) -> PipelinedClient {
        self.inner
    }
}
