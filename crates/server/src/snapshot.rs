//! Epoch-published world snapshots: a read path that never waits on a
//! rebuild.
//!
//! A [`WorldSnapshot`] is an immutable, `Send + Sync` bundle of everything a
//! solve needs — the overlay, its all-pairs table, the pinned source and the
//! topology epoch — plus the per-epoch [`HopMatrix`] materialised lazily
//! *inside* the snapshot (a `OnceLock`, so concurrent first touches build it
//! at most once and every later solve reuses the `Arc`).
//!
//! Snapshots are published through a [`Snap`] cell: mutators assemble the
//! *next* snapshot entirely off to the side (copy-on-write overlay, routing
//! table patched from the predecessor) and then [`Snap::store`] swaps one
//! pointer. Readers call [`Snap::load`], which clones an `Arc` under a
//! mutex held for a handful of instructions (short, but not lock-free) —
//! no reader ever waits on a rebuild, and a solve runs against its snapshot
//! with **zero shared locks held**. The previous epoch's snapshot stays
//! alive (and solvable) for as long as any in-flight request still holds
//! its `Arc`.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use sflow_core::baseline::HopMatrix;
use sflow_core::{CanonicalKey, FederationContext, FlowGraph, OwnedFederationContext};
use sflow_graph::NodeIx;
use sflow_net::{OverlayGraph, ServiceInstance};
use sflow_routing::{AllPairs, DirtyLinks};

use crate::Algorithm;

/// The identity of one cached solve: the requirement's structural
/// [`CanonicalKey`] plus the solve parameters that shape the answer
/// (algorithm and hop horizon). Everything else a solve depends on — the
/// overlay, its QoS and the routing table — is pinned by the snapshot the
/// cache lives in, and *load* is deliberately excluded: cached flows are
/// revalidated against the live [`LoadPlane`](crate::load::LoadPlane) at
/// hit time instead of being keyed by it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SolveKey {
    /// Structural identity of the requirement (order-insensitive).
    pub requirement: CanonicalKey,
    /// Which federation algorithm solved it.
    pub algorithm: Algorithm,
    /// The hop horizon the solve ran under, if any.
    pub hop_limit: Option<usize>,
}

/// One immutable epoch of the world: overlay + routing table + source pin +
/// epoch number, with the epoch's hop matrix built lazily on first use.
#[derive(Debug)]
pub struct WorldSnapshot {
    overlay: Arc<OverlayGraph>,
    all_pairs: Arc<AllPairs>,
    source: ServiceInstance,
    source_node: NodeIx,
    epoch: u64,
    /// The hop matrix for exactly this epoch's overlay, built by the first
    /// solver that needs a horizon and shared by every later one. Lives in
    /// the snapshot itself, so it can never be paired with the wrong epoch
    /// and dies with the snapshot.
    hop_matrix: OnceLock<Arc<HopMatrix>>,
    /// The requirement-keyed solve cache for exactly this epoch: flow
    /// graphs federated against this snapshot, shared by every tenant that
    /// presents the same [`SolveKey`]. The same lives-inside-the-snapshot
    /// reasoning as the hop matrix applies — an entry can never be paired
    /// with the wrong epoch and dies with the snapshot — but the cache is a
    /// keyed map, not a single value, so it sits behind a short
    /// `parking_lot::Mutex` (held for a lookup or an insert, never across a
    /// solve; the `guard-across-solve` audit rule polices the callers).
    solves: Mutex<BTreeMap<SolveKey, Arc<FlowGraph>>>,
}

impl WorldSnapshot {
    /// Bundles one epoch of the world.
    ///
    /// # Panics
    ///
    /// Panics if `source_node` is not a node of `overlay`.
    pub fn new(
        overlay: Arc<OverlayGraph>,
        all_pairs: Arc<AllPairs>,
        source_node: NodeIx,
        epoch: u64,
    ) -> Self {
        assert!(
            overlay.graph().contains_node(source_node),
            "source instance must be an overlay node"
        );
        let source = overlay.instance(source_node);
        WorldSnapshot {
            overlay,
            all_pairs,
            source,
            source_node,
            epoch,
            hop_matrix: OnceLock::new(),
            solves: Mutex::new(BTreeMap::new()),
        }
    }

    /// The topology epoch this snapshot publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The overlay of this epoch.
    pub fn overlay(&self) -> &OverlayGraph {
        &self.overlay
    }

    /// The all-pairs shortest-widest table of this epoch.
    pub fn all_pairs(&self) -> &AllPairs {
        &self.all_pairs
    }

    /// The overlay, shared — what the load plane clones its clamped view
    /// from without copying the graph.
    pub fn overlay_arc(&self) -> Arc<OverlayGraph> {
        Arc::clone(&self.overlay)
    }

    /// The routing table, shared — the load plane patches its residual
    /// table from this one instead of rebuilding.
    pub fn all_pairs_arc(&self) -> Arc<AllPairs> {
        Arc::clone(&self.all_pairs)
    }

    /// The pinned source instance (survives every mutation).
    pub fn source(&self) -> ServiceInstance {
        self.source
    }

    /// The source's overlay node *in this epoch's numbering*.
    pub fn source_node(&self) -> NodeIx {
        self.source_node
    }

    /// An owned federation context sharing this snapshot's overlay and
    /// table. The context is `'static` and `Send + Sync`: the solve it
    /// feeds runs detached from any lock, against exactly this epoch.
    pub fn context(&self) -> OwnedFederationContext {
        FederationContext::from_arcs(
            Arc::clone(&self.overlay),
            Arc::clone(&self.all_pairs),
            self.source_node,
        )
    }

    /// This epoch's hop matrix, built on first touch and shared afterwards.
    pub fn hop_matrix(&self) -> Arc<HopMatrix> {
        self.hop_matrix_tracked().0
    }

    /// Like [`WorldSnapshot::hop_matrix`], but also reports whether *this*
    /// call performed the build (`true` for exactly one caller per epoch,
    /// however many race on the first touch) — the servers' cache-hit/miss
    /// accounting without a side cache to tag.
    pub fn hop_matrix_tracked(&self) -> (Arc<HopMatrix>, bool) {
        let mut built = false;
        let matrix = self.hop_matrix.get_or_init(|| {
            built = true;
            Arc::new(HopMatrix::new(&self.overlay))
        });
        (Arc::clone(matrix), built)
    }

    /// The hop matrix if some solve already built (or a mutation carried)
    /// it; `None` before the epoch's first touch.
    pub fn cached_hop_matrix(&self) -> Option<Arc<HopMatrix>> {
        self.hop_matrix.get().map(Arc::clone)
    }

    /// Pre-seeds the hop matrix, used when assembling the successor of a
    /// QoS-only mutation: hop counts are purely structural, so the
    /// predecessor's matrix is still exact and first-touch cost is saved.
    /// A no-op if this snapshot already built its own.
    pub fn adopt_hop_matrix(&self, matrix: Arc<HopMatrix>) {
        let _ = self.hop_matrix.set(matrix);
    }

    /// The cached solve for `key`, if some earlier federate against this
    /// snapshot (or an adoption from the predecessor epoch) filled it.
    ///
    /// A hit is exact w.r.t. topology and QoS by construction — the cache
    /// lives inside one epoch — but says nothing about *load*: callers on
    /// the residual path must revalidate the flow against the live
    /// `LoadPlane` before serving it.
    pub fn cached_solve(&self, key: &SolveKey) -> Option<Arc<FlowGraph>> {
        self.solves.lock().get(key).map(Arc::clone)
    }

    /// Files a freshly solved flow under `key` and returns the canonical
    /// shared instance: if a racing filler got there first, *its* flow wins
    /// and the argument is dropped, so every tenant of the key federates
    /// onto one pointer-identical flow graph (the forest layer's anchor).
    pub fn cache_solve(&self, key: SolveKey, flow: FlowGraph) -> Arc<FlowGraph> {
        Arc::clone(
            self.solves
                .lock()
                .entry(key)
                .or_insert_with(|| Arc::new(flow)),
        )
    }

    /// Drops the cached solve for `key`, if any. Used when a served flow
    /// turns out to be inconsistent with live state (e.g. its forest was
    /// torn down between lookup and admission).
    pub fn evict_solve(&self, key: &SolveKey) {
        self.solves.lock().remove(key);
    }

    /// Entries currently cached (tests and stats gauges).
    pub fn cached_solve_count(&self) -> usize {
        self.solves.lock().len()
    }

    /// Pre-seeds this snapshot's solve cache from its predecessor when the
    /// epoch step was a QoS-only patch: every entry whose flow's overlay
    /// paths avoid all `dirty` links kept its exact QoS (the same fact the
    /// routing dirty rules stand on), so it is adopted; entries traversing
    /// a dirtied link are dropped cold. Returns how many entries were
    /// adopted.
    ///
    /// Only sound for successors that preserve node numbering (QoS patches
    /// do; structural rebuilds renumber and must start cold).
    pub fn adopt_clean_solves(&self, prev: &WorldSnapshot, dirty: &DirtyLinks) -> usize {
        let inherited: Vec<(SolveKey, Arc<FlowGraph>)> = prev
            .solves
            .lock()
            .iter()
            .filter(|(_, flow)| {
                flow.edges()
                    .iter()
                    .all(|e| dirty.path_is_clean(&e.overlay_path))
            })
            .map(|(k, f)| (k.clone(), Arc::clone(f)))
            .collect();
        let adopted = inherited.len();
        let mut mine = self.solves.lock();
        for (key, flow) in inherited {
            mine.entry(key).or_insert(flow);
        }
        adopted
    }
}

/// The publication cell: one `Arc<WorldSnapshot>` swapped atomically from
/// the mutator's point of view, cloned on load from the readers'.
///
/// Hand-rolled over a `parking_lot::Mutex` rather than a vendored
/// `arc-swap`: the critical section on either side is a single `Arc` clone
/// or pointer store (never a rebuild, never a solve). This is *not*
/// lock-free — a holder preempted inside the critical section briefly
/// blocks other loads and stores — merely a mutex held for a handful of
/// instructions. The invariant that matters — *no guard is ever held
/// across a solve* — is enforced by the `guard-across-solve` audit rule.
#[derive(Debug)]
pub struct Snap {
    current: Mutex<Arc<WorldSnapshot>>,
}

impl Snap {
    /// A cell publishing `snapshot` as the current world.
    pub fn new(snapshot: Arc<WorldSnapshot>) -> Self {
        Snap {
            current: Mutex::new(snapshot),
        }
    }

    /// The current snapshot. Constant-time: clones the `Arc`, never blocks
    /// on a rebuild (mutators prepare their successor *before* storing).
    pub fn load(&self) -> Arc<WorldSnapshot> {
        Arc::clone(&self.current.lock())
    }

    /// The current epoch without keeping the snapshot alive.
    pub fn epoch(&self) -> u64 {
        self.current.lock().epoch
    }

    /// Publishes `next` as the current snapshot. Readers that already
    /// loaded the predecessor keep solving against it; everyone after this
    /// call sees `next`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that epochs only move forward — a regressing store is
    /// a mutator serialization bug.
    pub fn store(&self, next: Arc<WorldSnapshot>) {
        let mut current = self.current.lock();
        debug_assert!(
            next.epoch > current.epoch,
            "snapshot epochs must be monotonic: {} -> {}",
            current.epoch,
            next.epoch
        );
        *current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sflow_core::fixtures::{diamond_fixture, diamond_requirement};
    use sflow_core::Solver;
    use sflow_routing::{Bandwidth, Latency, Qos};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn snapshot_of_diamond() -> WorldSnapshot {
        let fx = diamond_fixture();
        WorldSnapshot::new(Arc::new(fx.overlay), Arc::new(fx.all_pairs), fx.source, 0)
    }

    /// Satellite regression: concurrent first-touch solves build the hop
    /// matrix at most once per epoch, and all of them share the one build.
    #[test]
    fn concurrent_first_touches_build_the_hop_matrix_at_most_once() {
        for _ in 0..20 {
            let snap = Arc::new(snapshot_of_diamond());
            let builds = Arc::new(AtomicUsize::new(0));
            let matrices: Vec<Arc<HopMatrix>> = (0..8)
                .map(|_| {
                    let snap = Arc::clone(&snap);
                    let builds = Arc::clone(&builds);
                    thread::spawn(move || {
                        let (matrix, built) = snap.hop_matrix_tracked();
                        if built {
                            builds.fetch_add(1, Ordering::SeqCst);
                        }
                        matrix
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            assert_eq!(
                builds.load(Ordering::SeqCst),
                1,
                "exactly one thread may build per epoch"
            );
            for m in &matrices {
                assert!(Arc::ptr_eq(m, &matrices[0]), "all callers share one matrix");
            }
        }
    }

    #[test]
    fn adopted_matrices_preempt_the_first_touch() {
        let a = snapshot_of_diamond();
        let (built_matrix, built) = a.hop_matrix_tracked();
        assert!(built);
        let b = snapshot_of_diamond();
        b.adopt_hop_matrix(Arc::clone(&built_matrix));
        let (reused, built) = b.hop_matrix_tracked();
        assert!(!built, "an adopted matrix satisfies the first touch");
        assert!(Arc::ptr_eq(&reused, &built_matrix));
        // Adoption after the fact is a no-op.
        a.adopt_hop_matrix(Arc::new(HopMatrix::new(a.overlay())));
        assert!(Arc::ptr_eq(&a.hop_matrix(), &built_matrix));
    }

    #[test]
    fn snap_load_returns_the_published_snapshot_and_keeps_old_epochs_alive() {
        let first = Arc::new(snapshot_of_diamond());
        let cell = Snap::new(Arc::clone(&first));
        let held = cell.load();
        assert_eq!(held.epoch(), 0);

        let fx = diamond_fixture();
        let next = Arc::new(WorldSnapshot::new(
            Arc::new(fx.overlay),
            Arc::new(fx.all_pairs),
            fx.source,
            1,
        ));
        cell.store(next);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.load().epoch(), 1);
        // The reader that loaded before the store still solves against its
        // own epoch — snapshots are immutable, not invalidated.
        assert_eq!(held.epoch(), 0);
        assert!(held
            .context()
            .qos(held.source_node(), held.source_node())
            .is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotonic")]
    fn snap_store_rejects_epoch_regressions() {
        let cell = Snap::new(Arc::new(snapshot_of_diamond()));
        cell.store(Arc::new(snapshot_of_diamond())); // 0 -> 0 regresses
    }

    fn diamond_solve_key() -> (SolveKey, sflow_core::ServiceRequirement) {
        let req = diamond_requirement();
        let key = SolveKey {
            requirement: req.canonical_key(),
            algorithm: Algorithm::Sflow,
            hop_limit: None,
        };
        (key, req)
    }

    #[test]
    fn solve_cache_first_writer_wins_and_eviction_clears() {
        let snap = snapshot_of_diamond();
        let (key, req) = diamond_solve_key();
        assert!(snap.cached_solve(&key).is_none());
        assert_eq!(snap.cached_solve_count(), 0);

        let flow = Solver::new(&snap.context()).solve(&req).unwrap();
        let first = snap.cache_solve(key.clone(), flow.clone());
        let racer = snap.cache_solve(key.clone(), flow);
        assert!(
            Arc::ptr_eq(&first, &racer),
            "a racing filler adopts the first writer's flow"
        );
        let hit = snap.cached_solve(&key).expect("filled");
        assert!(Arc::ptr_eq(&hit, &first), "hits share the canonical arc");
        assert_eq!(snap.cached_solve_count(), 1);

        snap.evict_solve(&key);
        assert!(snap.cached_solve(&key).is_none());
        assert_eq!(snap.cached_solve_count(), 0);
        snap.evict_solve(&key); // eviction of a missing key is a no-op
    }

    /// The QoS-successor adoption rule: entries whose paths avoid every
    /// dirtied link are carried (same arc, no re-solve); entries crossing a
    /// dirtied link start the successor cold.
    #[test]
    fn adoption_keeps_clean_solves_and_drops_dirty_ones() {
        let prev = snapshot_of_diamond();
        let (key, req) = diamond_solve_key();
        let flow = Solver::new(&prev.context()).solve(&req).unwrap();
        let cached = prev.cache_solve(key.clone(), flow);

        // Every overlay link the cached flow traverses.
        let mut used: Vec<(NodeIx, NodeIx)> = cached
            .edges()
            .iter()
            .flat_map(|e| e.overlay_path.windows(2).map(|w| (w[0], w[1])))
            .collect();
        used.sort_unstable();
        let on_path = used[0];
        // The diamond has two disjoint middle routes; the flow uses one, so
        // some overlay link is untouched.
        let graph = prev.overlay().graph();
        let off_path = graph
            .node_ids()
            .flat_map(|n| graph.out_edges(n).map(|l| (l.from, l.to)))
            .find(|pair| used.binary_search(pair).is_err())
            .expect("the unused branch has links");
        let squeeze = Qos::new(Bandwidth::kbps(1), Latency::from_micros(99_999));

        // A patch on an unused link: the entry survives, arc and all.
        let (overlay, change) = prev
            .overlay()
            .with_link_qos(off_path.0, off_path.1, squeeze)
            .unwrap();
        let dirty = DirtyLinks::of(overlay.graph(), std::slice::from_ref(&change));
        let fx = diamond_fixture();
        let clean_next =
            WorldSnapshot::new(Arc::new(overlay), Arc::new(fx.all_pairs), fx.source, 1);
        assert_eq!(clean_next.adopt_clean_solves(&prev, &dirty), 1);
        let adopted = clean_next.cached_solve(&key).expect("adopted");
        assert!(Arc::ptr_eq(&adopted, &cached));

        // A patch on a traversed link: the entry is not carried.
        let (overlay, change) = prev
            .overlay()
            .with_link_qos(on_path.0, on_path.1, squeeze)
            .unwrap();
        let dirty = DirtyLinks::of(overlay.graph(), std::slice::from_ref(&change));
        let fx = diamond_fixture();
        let dirty_next =
            WorldSnapshot::new(Arc::new(overlay), Arc::new(fx.all_pairs), fx.source, 1);
        assert_eq!(dirty_next.adopt_clean_solves(&prev, &dirty), 0);
        assert!(dirty_next.cached_solve(&key).is_none());
    }
}
