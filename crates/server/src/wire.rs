//! Framing: length-prefixed JSON over any `Read`/`Write` transport.
//!
//! Each frame is a big-endian `u32` byte length followed by exactly that many
//! bytes of compact JSON. The length prefix makes message boundaries explicit
//! on a stream transport; the [`MAX_FRAME`] guard bounds what a peer can make
//! the server allocate.

use std::io::{self, ErrorKind, Read, Write};

use serde::de::FromContent;
use serde::Serialize;

/// Upper bound on a frame's payload, in bytes (1 MiB). A selection over even
/// a very large overlay is a few kilobytes of JSON; anything bigger is a
/// protocol error, not a workload.
pub const MAX_FRAME: usize = 1 << 20;

/// Serialises `value` as one frame onto `w`.
///
/// # Errors
///
/// I/O errors from the transport, or `InvalidData` if `value` exceeds
/// [`MAX_FRAME`] once encoded.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> io::Result<()> {
    let body = serde_json::to_string(value)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", body.len()),
        ));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame from `r` and deserialises it.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first prefix
/// byte) — how a client hanging up between requests looks to the server.
///
/// # Errors
///
/// I/O errors from the transport (including timeouts, which callers use to
/// poll a shutdown flag), `UnexpectedEof` mid-frame, `InvalidData` on an
/// oversized prefix or malformed JSON.
pub fn read_frame<T: FromContent>(r: &mut impl Read) -> io::Result<Option<T>> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix, false)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(ErrorKind::UnexpectedEof.into()),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("frame prefix of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut body = vec![0u8; len];
    if read_exact_or_eof(r, &mut body, true)? != len {
        return Err(ErrorKind::UnexpectedEof.into());
    }
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    let value = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(value))
}

/// How many consecutive read-timeout ticks a mid-frame stall may last before
/// the peer is declared dead. The server polls its shutdown flag with a
/// 100 ms read timeout, so this bounds a stalled frame at roughly a minute.
const MAX_MID_FRAME_STALLS: u32 = 600;

/// Like `read_exact`, but distinguishes EOF-at-the-start (returns `0`) from
/// EOF-mid-buffer (returns the partial count) so the caller can tell a
/// closed-down peer from a truncated frame.
///
/// Transports with a read timeout surface idle periods as
/// `WouldBlock`/`TimedOut`. At a frame boundary (`mid_frame == false`,
/// nothing read yet) that is returned to the caller as an idle tick; once
/// any byte of the frame has arrived — or the prefix already did — the
/// timeout only means the peer is slow, so the read resumes (bounded by
/// [`MAX_MID_FRAME_STALLS`]) instead of tearing the stream mid-frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], mid_frame: bool) -> io::Result<usize> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !mid_frame && filled == 0 {
                    return Err(e); // idle between frames
                }
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Request};

    #[test]
    fn frames_round_trip() {
        let req = Request::Federate {
            requirement: "0>1>3, 0>2>3".into(),
            algorithm: Algorithm::Sflow,
            hop_limit: Some(2),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        assert_eq!(
            buf.len(),
            4 + u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize
        );
        let back: Request = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn clean_eof_is_none() {
        let empty: &[u8] = &[];
        let got: Option<Request> = read_frame(&mut &*empty).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        // A torn length prefix is also an error, not a clean EOF.
        let err = read_frame::<Request>(&mut &buf[..2]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_prefix_is_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }
}
