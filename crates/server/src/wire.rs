//! Framing: length-prefixed JSON over any `Read`/`Write` transport.
//!
//! Each frame is a big-endian `u32` byte length followed by exactly that many
//! bytes of compact JSON. The length prefix makes message boundaries explicit
//! on a stream transport; the [`MAX_FRAME`] guard bounds what a peer can make
//! the server allocate.
//!
//! Decoding failures are typed ([`WireError`]) so the server can tell a
//! malicious or broken *peer* (oversized prefix, torn frame, garbage JSON —
//! degrade that connection, answer an error if the stream is still writable)
//! from a *transport* condition (idle-tick timeout, dead socket). A malformed
//! frame must never take down more than its own connection.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

use serde::de::FromContent;
use serde::Serialize;

/// Upper bound on a frame's payload, in bytes (1 MiB). A selection over even
/// a very large overlay is a few kilobytes of JSON; anything bigger is a
/// protocol error, not a workload.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be written or read.
#[derive(Debug)]
pub enum WireError {
    /// A transport-level I/O error (including `WouldBlock`/`TimedOut` idle
    /// ticks on sockets with a read timeout — see [`WireError::is_idle`]).
    Io(io::Error),
    /// The stream ended mid-frame: the peer died or sent a short frame.
    Truncated {
        /// Bytes the frame (prefix or body) still owed.
        expected: usize,
        /// Bytes actually received before the stream ended.
        got: usize,
    },
    /// The declared frame length exceeds [`MAX_FRAME`] — a protocol error
    /// caught *before* allocating the buffer.
    Oversized {
        /// The length the prefix declared.
        declared: usize,
    },
    /// The frame body is not valid UTF-8.
    Utf8(String),
    /// The frame body is not valid JSON for the expected type.
    Json(String),
}

impl WireError {
    /// True for the read-timeout ticks a socket with `set_read_timeout`
    /// produces while idle at a frame boundary — the caller's cue to poll
    /// its shutdown flag and retry, not a failure.
    pub fn is_idle(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
        )
    }

    /// True when the *peer* violated the protocol (as opposed to the
    /// transport failing): oversized prefix, torn frame, non-UTF-8 or
    /// non-JSON body. These are what a server should count and answer.
    pub fn is_protocol(&self) -> bool {
        matches!(
            self,
            WireError::Truncated { .. }
                | WireError::Oversized { .. }
                | WireError::Utf8(_)
                | WireError::Json(_)
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::Oversized { declared } => write!(
                f,
                "frame of {declared} bytes exceeds MAX_FRAME ({MAX_FRAME})"
            ),
            WireError::Utf8(e) => write!(f, "frame is not UTF-8: {e}"),
            WireError::Json(e) => write!(f, "frame is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Collapses a [`WireError`] back into an `io::Error` for callers (the
/// blocking [`Client`](crate::Client)) that expose a plain `io::Result` API.
impl From<WireError> for io::Error {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => e,
            WireError::Truncated { .. } => io::Error::new(ErrorKind::UnexpectedEof, e.to_string()),
            WireError::Oversized { .. } | WireError::Utf8(_) | WireError::Json(_) => {
                io::Error::new(ErrorKind::InvalidData, e.to_string())
            }
        }
    }
}

/// Serialises `value` as one frame onto `w`.
///
/// # Errors
///
/// [`WireError::Io`] from the transport, or [`WireError::Oversized`] if
/// `value` exceeds [`MAX_FRAME`] once encoded.
pub fn write_frame<T: Serialize>(w: &mut impl Write, value: &T) -> Result<(), WireError> {
    let body = serde_json::to_string(value).map_err(|e| WireError::Json(e.to_string()))?;
    if body.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            declared: body.len(),
        });
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(body.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r` and deserialises it.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first prefix
/// byte) — how a client hanging up between requests looks to the server.
///
/// # Errors
///
/// [`WireError::Io`] from the transport (including timeouts, which callers
/// use to poll a shutdown flag — see [`WireError::is_idle`]),
/// [`WireError::Truncated`] on EOF mid-frame, [`WireError::Oversized`] on a
/// prefix beyond [`MAX_FRAME`], [`WireError::Utf8`]/[`WireError::Json`] on a
/// malformed body.
pub fn read_frame<T: FromContent>(r: &mut impl Read) -> Result<Option<T>, WireError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix, false)? {
        0 => return Ok(None),
        4 => {}
        got => {
            return Err(WireError::Truncated {
                expected: prefix.len(),
                got,
            })
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { declared: len });
    }
    let mut body = vec![0u8; len];
    let got = read_exact_or_eof(r, &mut body, true)?;
    if got != len {
        return Err(WireError::Truncated { expected: len, got });
    }
    let text = String::from_utf8(body).map_err(|e| WireError::Utf8(e.to_string()))?;
    let value = serde_json::from_str(&text).map_err(|e| WireError::Json(e.to_string()))?;
    Ok(Some(value))
}

/// Serialises `value` as one frame into a fresh byte buffer (prefix + body),
/// for callers that stage writes instead of owning the transport — the
/// reactor's per-connection write buffers.
///
/// # Errors
///
/// [`WireError::Oversized`] if `value` exceeds [`MAX_FRAME`] once encoded,
/// or [`WireError::Json`] if it cannot be serialised.
pub fn encode_frame<T: Serialize>(value: &T) -> Result<Vec<u8>, WireError> {
    let body = serde_json::to_string(value).map_err(|e| WireError::Json(e.to_string()))?;
    if body.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            declared: body.len(),
        });
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    Ok(out)
}

/// Incremental frame parser for non-blocking transports.
///
/// The blocking [`read_frame`] owns its `Read` and can loop until a frame
/// completes; a reactor cannot — it gets whatever bytes this readiness event
/// delivered, which may be half a length prefix or three frames and a
/// fragment. `FrameDecoder` buffers across those boundaries: [`feed`] bytes
/// as they arrive, then drain complete frames with [`next_frame`] until it
/// returns `Ok(None)`.
///
/// Oversized prefixes are rejected as soon as the four prefix bytes are
/// present, before any body accumulates, so a hostile peer cannot make the
/// decoder buffer more than [`MAX_FRAME`] + 4 bytes per frame.
///
/// [`feed`]: FrameDecoder::feed
/// [`next_frame`]: FrameDecoder::next_frame
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by completed frames; compacted lazily
    /// so per-byte feeds don't shift the buffer per frame.
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends transport bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame. Nonzero after
    /// EOF means the peer died mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete frame, or `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] on a prefix beyond [`MAX_FRAME`],
    /// [`WireError::Utf8`]/[`WireError::Json`] on a malformed body. After an
    /// error the decoder is poisoned in place — the connection should be
    /// dropped, matching the blocking path's behaviour.
    pub fn next_frame<T: FromContent>(&mut self) -> Result<Option<T>, WireError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized { declared: len });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let text = std::str::from_utf8(body).map_err(|e| WireError::Utf8(e.to_string()))?;
        let value = serde_json::from_str(text).map_err(|e| WireError::Json(e.to_string()))?;
        self.consumed += 4 + len;
        // Compact once the dead prefix dominates, amortising the copy.
        if self.consumed > 4096 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        Ok(Some(value))
    }
}

/// How many consecutive read-timeout ticks a mid-frame stall may last before
/// the peer is declared dead. The server polls its shutdown flag with a
/// 100 ms read timeout, so this bounds a stalled frame at roughly a minute.
const MAX_MID_FRAME_STALLS: u32 = 600;

/// Like `read_exact`, but distinguishes EOF-at-the-start (returns `0`) from
/// EOF-mid-buffer (returns the partial count) so the caller can tell a
/// closed-down peer from a truncated frame.
///
/// Transports with a read timeout surface idle periods as
/// `WouldBlock`/`TimedOut`. At a frame boundary (`mid_frame == false`,
/// nothing read yet) that is returned to the caller as an idle tick; once
/// any byte of the frame has arrived — or the prefix already did — the
/// timeout only means the peer is slow, so the read resumes (bounded by
/// [`MAX_MID_FRAME_STALLS`]) instead of tearing the stream mid-frame.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8], mid_frame: bool) -> io::Result<usize> {
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if !mid_frame && filled == 0 {
                    return Err(e); // idle between frames
                }
                stalls += 1;
                if stalls > MAX_MID_FRAME_STALLS {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, Request};

    #[test]
    fn frames_round_trip() {
        let req = Request::Federate {
            requirement: "0>1>3, 0>2>3".into(),
            algorithm: Algorithm::Sflow,
            hop_limit: Some(2),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &req).unwrap();
        assert_eq!(
            buf.len(),
            4 + u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize
        );
        let back: Request = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn clean_eof_is_none() {
        let empty: &[u8] = &[];
        let got: Option<Request> = read_frame(&mut &*empty).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn truncated_frame_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Stats).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err:?}");
        assert!(err.is_protocol() && !err.is_idle());
        // A torn length prefix is also truncation, not a clean EOF.
        let err = read_frame::<Request>(&mut &buf[..2]).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Truncated {
                    expected: 4,
                    got: 2
                }
            ),
            "{err:?}"
        );
        assert_eq!(io::Error::from(err).kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, WireError::Oversized { declared } if declared == MAX_FRAME + 1),
            "{err:?}"
        );
        assert!(err.is_protocol());
        assert_eq!(io::Error::from(err).kind(), ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_utf8_and_json_are_typed() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Utf8(_)), "{err:?}");

        let body = b"{\"nope\": 1}";
        let mut buf = (body.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(body);
        let err = read_frame::<Request>(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::Json(_)), "{err:?}");
        assert!(err.is_protocol());
        assert!(err.to_string().contains("JSON"));
    }

    #[test]
    fn decoder_handles_torn_and_batched_frames() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame(&Request::Stats).unwrap());
        wire.extend_from_slice(&encode_frame(&Request::LoadMap).unwrap());
        let mut dec = FrameDecoder::new();
        // One byte per feed: no frame completes early, both arrive intact.
        let mut out = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(req) = dec.next_frame::<Request>().unwrap() {
                out.push(req);
            }
        }
        assert_eq!(out, vec![Request::Stats, Request::LoadMap]);
        assert_eq!(dec.pending(), 0);
        // The whole wire in one feed: both frames drain from one buffer.
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        assert_eq!(dec.next_frame::<Request>().unwrap(), Some(Request::Stats));
        assert_eq!(dec.next_frame::<Request>().unwrap(), Some(Request::LoadMap));
        assert_eq!(dec.next_frame::<Request>().unwrap(), None);
    }

    #[test]
    fn decoder_matches_blocking_reader_on_errors() {
        let mut dec = FrameDecoder::new();
        dec.feed(&((MAX_FRAME + 1) as u32).to_be_bytes());
        let err = dec.next_frame::<Request>().unwrap_err();
        assert!(matches!(err, WireError::Oversized { .. }), "{err:?}");

        let mut dec = FrameDecoder::new();
        dec.feed(&2u32.to_be_bytes());
        dec.feed(&[0xff, 0xfe]);
        let err = dec.next_frame::<Request>().unwrap_err();
        assert!(matches!(err, WireError::Utf8(_)), "{err:?}");

        let mut dec = FrameDecoder::new();
        let body = b"[]";
        dec.feed(&(body.len() as u32).to_be_bytes());
        dec.feed(body);
        let err = dec.next_frame::<Request>().unwrap_err();
        assert!(matches!(err, WireError::Json(_)), "{err:?}");
        assert!(err.is_protocol());
    }

    #[test]
    fn idle_tick_is_not_a_protocol_error() {
        let idle = WireError::Io(ErrorKind::WouldBlock.into());
        assert!(idle.is_idle() && !idle.is_protocol());
        let dead = WireError::Io(ErrorKind::ConnectionReset.into());
        assert!(!dead.is_idle() && !dead.is_protocol());
    }
}
