//! The session rebalancer: sweep hot links, migrate the cheapest crossing
//! sessions onto residual capacity, make-before-break.
//!
//! Each sweep (triggered by [`Request::Rebalance`](crate::Request::Rebalance)
//! or the background thread `serve --rebalance-interval-ms` starts):
//!
//! 1. ticks the load plane's discounted estimator;
//! 2. finds every link above the configured utilization threshold;
//! 3. ranks the sessions crossing those links by **migration cost** —
//!    session bandwidth × how many hot links its paths overlap — and takes
//!    the cheapest few;
//! 4. re-solves each mover against the residual view (its own booking still
//!    counted, which is exactly what steers the new path off the links it
//!    is congesting);
//! 5. commits each improving move make-before-break.
//!
//! Invariants, each pinned by a test or the lint engine:
//!
//! * **No lock guard is live across a re-solve.** The candidate list is
//!   copied out under the sessions lock, the guard is dropped, and every
//!   mover re-solves off-lock — the `guard-across-solve` audit rule names
//!   [`resolve_mover`] a solve, so a regression here fails CI.
//! * **Make-before-break.** A migration mutates the session entry in place
//!   under one sessions-lock hold — the session is never absent from the
//!   table — and the plane opens the new reservation *before* releasing
//!   the old, so claimed capacity is never unaccounted in between.
//! * **Failures change nothing.** A mover that cannot re-solve, or whose
//!   new path would not improve the world, is left byte-for-byte as it was
//!   and counted in `migration_failures`.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sflow_core::{FederationContext, FederationError, FlowGraph, ServiceRequirement, Solver};

use crate::load::links_of;
use crate::server::Shared;

/// At most this many sessions migrate per sweep: every migration patches
/// the load plane twice, and a bounded sweep keeps the lock holds short.
/// Convergence comes from repeated sweeps, not from one big one.
const MAX_MOVERS_PER_SWEEP: usize = 8;

/// How often the background loop polls the shutdown flag while waiting out
/// the sweep interval.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// What one sweep did.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SweepOutcome {
    /// Sessions moved to cheaper paths.
    pub migrations: usize,
    /// Movers that failed to re-solve or did not improve the world.
    pub migration_failures: usize,
    /// The worst per-link utilization after the sweep, permille.
    pub max_utilization_permille: u64,
}

/// One mover copied out of the session table: everything the off-lock
/// re-solve needs, so the table is untouched until the commit.
struct Candidate {
    id: u64,
    requirement: ServiceRequirement,
    /// Migration cost: session bandwidth × hot-link overlap. Cheap movers
    /// first — they free capacity with the least disruption.
    cost: u64,
}

/// Re-solves one mover against the residual view. A named entry point —
/// not an inlined `Solver` call — so the `guard-across-solve` audit rule
/// can police rebalancer solves by token: no lock guard may be live on any
/// line spanning a `resolve_mover(` call.
fn resolve_mover(
    ctx: &FederationContext<'_>,
    requirement: &ServiceRequirement,
) -> Result<FlowGraph, FederationError> {
    Solver::new(ctx).solve(requirement)
}

/// One rebalancer sweep. Returns what it did; also publishes the
/// post-sweep worst-link utilization into the server metrics.
pub(crate) fn sweep(shared: &Shared) -> SweepOutcome {
    let workers = shared.config.route_workers;
    let snapshot = shared.snap.load();
    let mut outcome = SweepOutcome::default();

    // One DRE tick per sweep. Plane publications happen under the sessions
    // lock, like every open and release, so they cannot interleave with a
    // session mutating the ledger.
    let ticked = shared.sessions.lock();
    let plane = shared.load.load();
    shared.load.publish(Arc::new(plane.decayed()));
    drop(ticked);

    let plane = shared.load.load();
    outcome.max_utilization_permille = plane.max_utilization_permille();
    if plane.epoch() != snapshot.epoch() {
        // Mid-rebase: a mutation is republishing the ledger for a new
        // epoch; there is nothing coherent to balance against.
        shared
            .metrics
            .set_max_link_utilization(outcome.max_utilization_permille);
        return outcome;
    }
    let hot = plane.hot_links(shared.config.utilization_threshold_permille);
    if hot.is_empty() {
        shared
            .metrics
            .set_max_link_utilization(outcome.max_utilization_permille);
        return outcome;
    }

    // Copy the candidates out under the sessions lock, then drop it — the
    // re-solves below run with no guard live.
    let sessions = shared.sessions.lock();
    let mut candidates: Vec<Candidate> = sessions
        .live
        .iter()
        .filter_map(|(&id, session)| {
            if session.solved_epoch != snapshot.epoch() {
                return None;
            }
            // Forest members never migrate individually: the holder's
            // reservation carries every tenant of the shared instance set,
            // so moving one member would strand the others on a booking
            // their flow no longer matches. (Non-holders carry no links and
            // would never rank anyway; this also pins the holder.)
            if session.forest.is_some() {
                return None;
            }
            let overlap = session
                .links
                .iter()
                .filter(|(link, _)| hot.contains(link))
                .count() as u64;
            if overlap == 0 {
                return None;
            }
            Some(Candidate {
                id,
                requirement: session.requirement.clone(),
                cost: session
                    .flow
                    .quality()
                    .bandwidth
                    .as_kbps()
                    .saturating_mul(overlap),
            })
        })
        .collect();
    drop(sessions);
    candidates.sort_by_key(|c| (c.cost, c.id));
    candidates.truncate(MAX_MOVERS_PER_SWEEP);

    for candidate in candidates {
        // Solve against the *current* plane (it moves as earlier movers in
        // this very sweep commit). The mover's own booking is still
        // counted — that is what pushes the new path off its hot links.
        let ctx = shared.load.load().context();
        let moved = match resolve_mover(&ctx, &candidate.requirement) {
            Ok(flow) => flow,
            Err(_) => {
                outcome.migration_failures += 1;
                shared.metrics.migration_failure();
                continue;
            }
        };

        // Commit under one sessions-lock hold. The entry is mutated in
        // place — a concurrent reader locking the table sees the session
        // at every instant, old path or new, never absent.
        let mut sessions = shared.sessions.lock();
        let plane = shared.load.load();
        let committed = (|| {
            let session = sessions.live.get_mut(&candidate.id)?;
            if plane.epoch() != snapshot.epoch() || session.solved_epoch != snapshot.epoch() {
                // The session closed, or a mutation overtook the sweep:
                // this answer describes a world that is gone.
                return None;
            }
            let new_links = links_of(&moved, snapshot.overlay());
            // Accept only improvements: the swap must not raise the global
            // worst link, and must strictly lower the worst utilization
            // among the links this session touches (old or new) — the
            // local progress that lets several equally-hot links drain one
            // at a time.
            let preview = plane.with_changes(&new_links, &session.links, workers);
            if preview.max_utilization_permille() > plane.max_utilization_permille() {
                return None;
            }
            let local_before = session
                .links
                .iter()
                .map(|&(link, _)| plane.utilization_permille(link))
                .max()
                .unwrap_or(0);
            let local_after = session
                .links
                .iter()
                .chain(new_links.iter())
                .map(|&(link, _)| preview.utilization_permille(link))
                .max()
                .unwrap_or(0);
            if local_after >= local_before {
                return None;
            }
            // Make-before-break: book the new path, swap the session in
            // place, only then release the old path.
            shared
                .load
                .publish(Arc::new(plane.with_changes(&new_links, &[], workers)));
            let old_links = std::mem::replace(&mut session.links, new_links);
            session.flow = moved;
            let broken = shared.load.load().with_changes(&[], &old_links, workers);
            shared.load.publish(Arc::new(broken));
            Some(())
        })();
        drop(sessions);
        match committed {
            Some(()) => {
                outcome.migrations += 1;
                shared.metrics.migration();
            }
            None => {
                outcome.migration_failures += 1;
                shared.metrics.migration_failure();
            }
        }
    }

    outcome.max_utilization_permille = shared.load.load().max_utilization_permille();
    shared
        .metrics
        .set_max_link_utilization(outcome.max_utilization_permille);
    outcome
}

/// The background sweep loop `serve --rebalance-interval-ms` starts: sweep
/// every `interval`, polling the shutdown flag often enough that `Shutdown`
/// is honoured promptly.
pub(crate) fn run(shared: &Arc<Shared>, interval: Duration) {
    let mut last = Instant::now();
    while !shared.shutting_down() {
        thread::sleep(SHUTDOWN_POLL.min(interval));
        if last.elapsed() >= interval {
            sweep(shared);
            last = Instant::now();
        }
    }
}
