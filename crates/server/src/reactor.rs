//! The epoll connection plane: non-blocking listener, per-connection state
//! machines, pipelined frames.
//!
//! One `reactor_loop` thread (more with `--reactor-threads N`; connections
//! shard round-robin) owns a [`polling::Poller`] and multiplexes readiness
//! for the listener plus every connection it hosts. The loop does **I/O and
//! framing only**:
//!
//! * a readable connection is drained into its `ConnState`'s incremental
//!   [`FrameDecoder`] — a readiness event may deliver half a length prefix
//!   or three frames and a fragment, and the state machine is indifferent;
//! * each decoded [`RequestFrame`] is answered inline if it is control
//!   plane (`control_response`) or handed to the admission queue exactly
//!   like the legacy plane — solves never run on a reactor thread, so the
//!   `guard-across-solve` discipline is untouched;
//! * workers push finished answers back as `Completion`s over a channel
//!   and wake the loop via [`polling::Poller::notify`]; the loop encodes
//!   them into the connection's write buffer in completion order. That is
//!   where out-of-order responses come from: a fast `Stats` overtakes a
//!   slow `Federate` pipelined ahead of it.
//!
//! **Backpressure**: a connection whose staged response bytes exceed
//! [`ServerConfig::write_high_water`](crate::ServerConfig::write_high_water)
//! stops being polled for read — and stops draining its own decoder — until
//! the buffer fully drains, so a slow reader bounds its server-side memory
//! at roughly the mark plus one frame instead of ballooning.
//!
//! Nothing in this module may block: no mutexes, no blocking reads or
//! writes, no channel waits (the `reactor-nonblocking` audit rule enforces
//! exactly that). The only wait is the poller's, bounded by a tick so the
//! shutdown flag is always observed.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};
use polling::{Event, Events, Poller};

use crate::server::{control_response, Job, Shared};
use crate::stats::Metrics;
use crate::wire::{encode_frame, FrameDecoder};
use crate::{Request, RequestFrame, Response, ResponseFrame};

/// The poller key the (reactor-0) listener is registered under; connections
/// live at `slot + 1`.
const LISTENER_KEY: usize = 0;

/// The poll-wait tick. Doubles as the shutdown poll interval, mirroring the
/// legacy plane's 100 ms read timeout.
const TICK: Duration = Duration::from_millis(100);

/// Per-read scratch size. Level-triggered polling re-delivers readability,
/// so a burst larger than this is picked up by the drain loop, not lost.
const READ_CHUNK: usize = 64 * 1024;

/// How a worker's answer travels back to the reactor that owns the
/// connection: a completion message plus a poller wakeup.
pub(crate) struct Completion {
    /// Which connection, as a generation-tagged token — see [`token`]. A
    /// completion for a token whose connection is gone is dropped silently
    /// (the client hung up mid-flight).
    pub(crate) token: u64,
    /// The `request_id` the client assigned to this request.
    pub(crate) request_id: u64,
    /// The worker's answer.
    pub(crate) response: Response,
}

/// Where a [`Job`]'s answer goes: handed back over a rendezvous channel
/// (thread-per-connection plane, the connection thread is waiting) or
/// pushed to the owning reactor as a [`Completion`] (reactor plane).
pub(crate) enum Reply {
    /// The legacy plane's rendezvous: exactly one response, one waiter.
    Rendezvous(crossbeam::channel::Sender<Response>),
    /// The reactor plane: send a completion, then wake the loop.
    Reactor {
        /// The owning reactor's completion queue.
        completions: Sender<Completion>,
        /// The owning reactor's poller, notified after the send.
        waker: Arc<Poller>,
        /// Generation-tagged connection token.
        token: u64,
        /// Echoed onto the [`ResponseFrame`].
        request_id: u64,
    },
}

impl Reply {
    /// Routes `response` back to whichever plane is waiting for it. Runs on
    /// a worker thread.
    pub(crate) fn send(self, shared: &Shared, response: Response) {
        match self {
            Reply::Rendezvous(tx) => {
                let _ = tx.send(response);
            }
            Reply::Reactor {
                completions,
                waker,
                token,
                request_id,
            } => {
                shared.metrics.frame_completed();
                let _ = completions.send(Completion {
                    token,
                    request_id,
                    response,
                });
                let _ = waker.notify();
            }
        }
    }
}

/// Packs a slab slot and its generation into the token a [`Completion`]
/// carries, so an answer for a closed connection can never be written to a
/// newcomer that reused the slot.
fn token(slot: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | slot as u64
}

/// What [`ConnState::handle_frame`]'s dispatcher did with a request.
pub(crate) enum Dispatch {
    /// Answer now (control plane, shed, shutdown race) — goes straight to
    /// the write buffer.
    Inline(Box<Response>),
    /// Admitted to the worker pool; the answer arrives as a [`Completion`].
    Admitted,
}

/// The per-connection state machine: an incremental frame decoder on the
/// read side, a staged write buffer on the write side, and the pause flag
/// tying them together under backpressure.
///
/// Transport-agnostic — methods take the socket (or, in tests, any
/// `Read`/`Write`) as a parameter — so the machine is unit-testable without
/// a poller.
pub(crate) struct ConnState {
    /// Generation-tagged identity, matched against [`Completion::token`].
    pub(crate) token: u64,
    decoder: FrameDecoder,
    /// Staged response bytes; `write_pos` marks how much is already on the
    /// wire. Compacted on full drain rather than shifted per write.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Frames admitted to the worker pool and not yet completed.
    pub(crate) in_flight: usize,
    /// Read interest parked: staged bytes crossed the high-water mark.
    pub(crate) paused: bool,
    /// Read side finished (clean EOF or protocol error): drain what is
    /// owed, accept nothing new.
    pub(crate) closing: bool,
    /// Transport failed: drop everything owed.
    pub(crate) dead: bool,
}

impl ConnState {
    pub(crate) fn new(token: u64) -> ConnState {
        ConnState {
            token,
            decoder: FrameDecoder::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            in_flight: 0,
            paused: false,
            closing: false,
            dead: false,
        }
    }

    /// Staged bytes not yet written.
    pub(crate) fn write_pending(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// True once the connection has nothing left to do and can be dropped:
    /// the transport died, or the read side closed and every admitted frame
    /// has been answered and flushed.
    pub(crate) fn finished(&self) -> bool {
        self.dead || (self.closing && self.in_flight == 0 && self.write_pending() == 0)
    }

    /// The poller interest this state wants: readable unless parked or
    /// closing, writable only while bytes are staged.
    pub(crate) fn interest(&self, key: usize) -> Event {
        match (
            !self.paused && !self.closing && !self.dead,
            self.write_pending() > 0 && !self.dead,
        ) {
            (true, true) => Event::all(key),
            (true, false) => Event::readable(key),
            (false, true) => Event::writable(key),
            (false, false) => Event::none(key),
        }
    }

    /// Drains the readable socket into the decoder, then pumps frames. A
    /// level-triggered poller re-arms readability as long as bytes remain,
    /// but draining to `WouldBlock` here keeps wakeups proportional to
    /// bursts, not bytes.
    pub(crate) fn on_readable(
        &mut self,
        io: &mut (impl Read + Write),
        metrics: &Metrics,
        high_water: usize,
        dispatch: &mut impl FnMut(u64, Request) -> Dispatch,
    ) {
        if self.closing || self.dead {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if self.paused || self.closing || self.dead {
                // Crossed high water mid-burst (stop consuming now), or a
                // protocol error already poisoned the stream.
                break;
            }
            match io.read(&mut chunk) {
                Ok(0) => {
                    self.closing = true;
                    if self.decoder.pending() > 0 {
                        // EOF mid-frame: the peer died owing bytes.
                        metrics.wire_error();
                    }
                    break;
                }
                Ok(n) => {
                    self.decoder.feed(&chunk[..n]);
                    self.pump(io, metrics, high_water, dispatch);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        // No trailing flush: `pump` already flushed after every feed, and a
        // flush *here* could lift a pause outside pump's retry loop, losing
        // the frames the pause left in the decoder.
    }

    /// Decodes and handles buffered frames until the decoder runs dry, the
    /// connection pauses under backpressure, or a protocol error poisons
    /// the stream. Split from [`ConnState::on_readable`] because a drain
    /// that lifts a pause must resume *here*, on bytes that were already
    /// read — no further readiness event will re-deliver them.
    pub(crate) fn pump(
        &mut self,
        io: &mut impl Write,
        metrics: &Metrics,
        high_water: usize,
        dispatch: &mut impl FnMut(u64, Request) -> Dispatch,
    ) {
        loop {
            while !self.paused && !self.closing && !self.dead {
                match self.decoder.next_frame::<RequestFrame>() {
                    Ok(Some(frame)) => self.handle_frame(frame, metrics, high_water, dispatch),
                    Ok(None) => break,
                    Err(e) => {
                        // Same contract as the legacy plane: count it, answer
                        // an unattributed error (reserved id 0), degrade this
                        // connection only.
                        metrics.wire_error();
                        self.enqueue_response(
                            &ResponseFrame {
                                request_id: 0,
                                response: Response::Error(format!("protocol error: {e}")),
                            },
                            metrics,
                            high_water,
                        );
                        self.closing = true;
                        break;
                    }
                }
            }
            let was_paused = self.paused;
            self.flush(io, metrics);
            if !was_paused || self.paused || self.closing || self.dead {
                break;
            }
            // The flush drained everything and lifted the pause while frames
            // are still sitting in the decoder. Their bytes were consumed
            // from the socket before the pause, so no readiness event will
            // re-announce them: keep decoding here or they are lost.
        }
    }

    /// Routes one decoded frame: inline answers go straight to the write
    /// buffer, admitted ones bump `in_flight` and will come back as
    /// completions.
    fn handle_frame(
        &mut self,
        frame: RequestFrame,
        metrics: &Metrics,
        high_water: usize,
        dispatch: &mut impl FnMut(u64, Request) -> Dispatch,
    ) {
        let shutdown = matches!(frame.request, Request::Shutdown);
        match dispatch(frame.request_id, frame.request) {
            Dispatch::Inline(response) => {
                self.enqueue_response(
                    &ResponseFrame {
                        request_id: frame.request_id,
                        response: *response,
                    },
                    metrics,
                    high_water,
                );
            }
            Dispatch::Admitted => {
                self.in_flight += 1;
                metrics.frame_dispatched();
            }
        }
        if shutdown {
            // Nothing after a shutdown request is worth parsing.
            self.closing = true;
        }
    }

    /// Accounts one completed frame and stages its response.
    pub(crate) fn complete(
        &mut self,
        request_id: u64,
        response: &Response,
        metrics: &Metrics,
        high_water: usize,
    ) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.enqueue_response(
            &ResponseFrame {
                request_id,
                response: response.clone(),
            },
            metrics,
            high_water,
        );
    }

    /// Encodes `frame` onto the write buffer and parks read interest when
    /// the staged bytes cross the high-water mark. Dropping read interest
    /// is the whole backpressure mechanism: TCP flow control then pushes
    /// back on the peer, and this side's memory stays bounded by the mark
    /// plus the frame that crossed it.
    fn enqueue_response(&mut self, frame: &ResponseFrame, metrics: &Metrics, high_water: usize) {
        if self.dead {
            return;
        }
        let bytes = match encode_frame(frame) {
            Ok(bytes) => bytes,
            Err(e) => {
                // A response too large for the wire (oversized LoadMap):
                // substitute a typed error so the request is still answered.
                let substitute = ResponseFrame {
                    request_id: frame.request_id,
                    response: Response::Error(format!("unencodable response: {e}")),
                };
                match encode_frame(&substitute) {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        // A short Error string cannot itself be oversized;
                        // if encoding still fails the connection is beyond
                        // answering — drop it.
                        self.mark_dead(metrics);
                        return;
                    }
                }
            }
        };
        metrics.write_buffered(bytes.len() as u64);
        self.write_buf.extend_from_slice(&bytes);
        if !self.paused && self.write_pending() > high_water {
            self.paused = true;
            metrics.backpressure_pause();
        }
    }

    /// Writes staged bytes until the socket would block or the buffer
    /// drains; a full drain lifts the backpressure pause (the caller then
    /// re-pumps the decoder) and reclaims the buffer.
    pub(crate) fn flush(&mut self, io: &mut impl Write, metrics: &Metrics) {
        if self.dead {
            return;
        }
        while self.write_pending() > 0 {
            match io.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.mark_dead(metrics);
                    return;
                }
                Ok(n) => {
                    self.write_pos += n;
                    metrics.write_drained(n as u64);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.mark_dead(metrics);
                    return;
                }
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        self.paused = false;
    }

    /// Transport failure: drop staged bytes (releasing their gauge) and
    /// mark the connection for teardown.
    fn mark_dead(&mut self, metrics: &Metrics) {
        metrics.write_drained(self.write_pending() as u64);
        self.write_buf.clear();
        self.write_pos = 0;
        self.dead = true;
    }
}

/// One registered connection: the socket plus its state machine and the
/// interest last told to the poller (so redundant `modify` syscalls are
/// skipped).
struct Conn {
    stream: TcpStream,
    state: ConnState,
    interest: (bool, bool),
}

/// Everything one reactor thread owns.
struct ReactorCtx {
    shared: Arc<Shared>,
    poller: Arc<Poller>,
    /// Streams handed over by the accepting reactor.
    incoming_rx: Receiver<TcpStream>,
    /// Workers' finished answers for connections this reactor owns.
    completion_rx: Receiver<Completion>,
    completion_tx: Sender<Completion>,
    job_tx: Sender<Job>,
}

/// Spawns the reactor plane: `config.reactor_threads` event loops, the
/// first of which owns the listener, accepts, and shards connections
/// round-robin over all loops (itself included). Returns the join handle
/// `ServerHandle` treats as the acceptor: on exit it joins the sibling
/// reactors, releases the admission queue and joins the workers.
///
/// # Errors
///
/// Propagates epoll-instance creation and listener-registration failures
/// (fd exhaustion); everything fallible happens before any thread starts.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listener: TcpListener,
    job_tx: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
) -> io::Result<JoinHandle<()>> {
    struct Seed {
        poller: Arc<Poller>,
        incoming_rx: Receiver<TcpStream>,
        completion_tx: Sender<Completion>,
        completion_rx: Receiver<Completion>,
    }
    listener.set_nonblocking(true)?;
    let n = shared.config.reactor_threads.max(1);
    let mut seeds = Vec::with_capacity(n);
    let mut handoff: Vec<(Sender<TcpStream>, Arc<Poller>)> = Vec::with_capacity(n);
    for _ in 0..n {
        let poller = Arc::new(Poller::new()?);
        let (incoming_tx, incoming_rx) = unbounded::<TcpStream>();
        let (completion_tx, completion_rx) = unbounded::<Completion>();
        handoff.push((incoming_tx, Arc::clone(&poller)));
        seeds.push(Seed {
            poller,
            incoming_rx,
            completion_tx,
            completion_rx,
        });
    }
    seeds[0]
        .poller
        .add(&listener, Event::readable(LISTENER_KEY))?;

    let mut siblings = Vec::with_capacity(n - 1);
    for seed in seeds.drain(1..).collect::<Vec<_>>() {
        let ctx = ReactorCtx {
            shared: Arc::clone(&shared),
            poller: seed.poller,
            incoming_rx: seed.incoming_rx,
            completion_rx: seed.completion_rx,
            completion_tx: seed.completion_tx,
            job_tx: job_tx.clone(),
        };
        siblings.push(thread::spawn(move || reactor_loop(ctx, None, &[])));
    }

    let sibling_wakers: Vec<Arc<Poller>> =
        handoff.iter().skip(1).map(|(_, p)| Arc::clone(p)).collect();
    let seed = match seeds.pop() {
        Some(seed) => seed,
        None => return Err(io::Error::other("no reactor 0 seed")),
    };
    let ctx = ReactorCtx {
        shared,
        poller: seed.poller,
        incoming_rx: seed.incoming_rx,
        completion_rx: seed.completion_rx,
        completion_tx: seed.completion_tx,
        job_tx,
    };
    Ok(thread::spawn(move || {
        reactor_loop(ctx, Some(&listener), &handoff);
        // Shut the plane down in dependency order: wake and join the
        // sibling loops, then release the admission queue so the workers
        // see disconnect, then join them.
        for waker in &sibling_wakers {
            let _ = waker.notify();
        }
        for sibling in siblings {
            let _ = sibling.join();
        }
        drop(handoff);
        for worker in workers {
            let _ = worker.join();
        }
    }))
}

/// One reactor thread's event loop. `listener` is `Some` only on reactor 0;
/// `handoff` is that reactor's round-robin table over every loop's incoming
/// channel and waker.
fn reactor_loop(
    ctx: ReactorCtx,
    listener: Option<&TcpListener>,
    handoff: &[(Sender<TcpStream>, Arc<Poller>)],
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u32 = 0;
    let mut next_target: usize = 0;
    let mut events = Events::with_capacity(1024);
    loop {
        let _ = ctx.poller.wait(&mut events, Some(TICK));
        ctx.shared.metrics.reactor_wakeup();
        if ctx.shared.shutting_down() {
            break;
        }
        // Workers' completions first: they free write-buffer space and may
        // lift pauses before this wakeup's readiness is processed.
        while let Ok(completion) = ctx.completion_rx.try_recv() {
            apply_completion(&ctx, &mut conns, &mut free, completion);
        }
        // Connections handed over by the accepting reactor.
        while let Ok(stream) = ctx.incoming_rx.try_recv() {
            register(&ctx, &mut conns, &mut free, &mut next_gen, stream);
        }
        for event in events.iter() {
            if event.key == LISTENER_KEY {
                if let Some(listener) = listener {
                    accept_burst(&ctx, listener, handoff, &mut next_target);
                }
                continue;
            }
            service_conn(&ctx, &mut conns, &mut free, event);
        }
    }
    // Best-effort: push out whatever is already staged before dropping the
    // connections (mirrors the legacy plane, which also abandons in-flight
    // work at shutdown).
    for conn in conns.iter_mut().flatten() {
        conn.state.flush(&mut conn.stream, &ctx.shared.metrics);
        ctx.shared
            .metrics
            .write_drained(conn.state.write_pending() as u64);
        ctx.shared.metrics.conn_closed();
    }
}

/// Accepts until the listener would block, shedding over-cap connections
/// and sharding the rest round-robin across the reactor loops.
fn accept_burst(
    ctx: &ReactorCtx,
    listener: &TcpListener,
    handoff: &[(Sender<TcpStream>, Arc<Poller>)],
    next_target: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let cap = ctx.shared.config.effective_max_connections() as u64;
                if ctx.shared.metrics.connections_open_now() >= cap {
                    drop(stream); // over the cap: shed the connection itself
                    continue;
                }
                ctx.shared.metrics.conn_opened();
                let target = *next_target % handoff.len();
                *next_target = next_target.wrapping_add(1);
                let (tx, waker) = &handoff[target];
                if tx.send(stream).is_err() {
                    ctx.shared.metrics.conn_closed();
                    continue;
                }
                let _ = waker.notify();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Registers one accepted stream with this reactor: non-blocking, a slab
/// slot, a generation-tagged token, read interest.
fn register(
    ctx: &ReactorCtx,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u32,
    stream: TcpStream,
) {
    if stream.set_nonblocking(true).is_err() {
        ctx.shared.metrics.conn_closed();
        return;
    }
    let _ = stream.set_nodelay(true);
    let slot = free.pop().unwrap_or_else(|| {
        conns.push(None);
        conns.len() - 1
    });
    *next_gen = next_gen.wrapping_add(1);
    let state = ConnState::new(token(slot, *next_gen));
    let key = slot + 1;
    if ctx.poller.add(&stream, state.interest(key)).is_err() {
        ctx.shared.metrics.conn_closed();
        free.push(slot);
        return;
    }
    conns[slot] = Some(Conn {
        stream,
        state,
        interest: (true, false),
    });
}

/// Handles one readiness event for a connection: drain reads, flush writes,
/// then retire or re-arm.
fn service_conn(ctx: &ReactorCtx, conns: &mut [Option<Conn>], free: &mut Vec<usize>, event: Event) {
    let slot = event.key - 1;
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return; // already retired; stale event from the same wait batch
    };
    let tok = conn.state.token;
    if event.readable {
        let mut dispatch = dispatcher(ctx, tok);
        conn.state.on_readable(
            &mut conn.stream,
            &ctx.shared.metrics,
            ctx.shared.config.write_high_water,
            &mut dispatch,
        );
    }
    if event.writable {
        conn.state.flush(&mut conn.stream, &ctx.shared.metrics);
        if !conn.state.paused {
            // The drain lifted a pause (or there never was one): frames the
            // pause left sitting in the decoder must be pumped now — their
            // bytes were consumed from the socket long ago, so no readiness
            // event will ever re-announce them.
            let mut dispatch = dispatcher(ctx, tok);
            conn.state.pump(
                &mut conn.stream,
                &ctx.shared.metrics,
                ctx.shared.config.write_high_water,
                &mut dispatch,
            );
        }
    }
    settle(ctx, conns, free, slot);
}

/// Builds the frame dispatcher for one connection: control plane inline,
/// data plane through the bounded admission queue with a reactor reply.
fn dispatcher<'a>(ctx: &'a ReactorCtx, token: u64) -> impl FnMut(u64, Request) -> Dispatch + 'a {
    move |request_id, request| {
        if let Some(response) = control_response(&ctx.shared, &request) {
            return Dispatch::Inline(Box::new(response));
        }
        match ctx.job_tx.try_send(Job {
            request,
            reply: Reply::Reactor {
                completions: ctx.completion_tx.clone(),
                waker: Arc::clone(&ctx.poller),
                token,
                request_id,
            },
        }) {
            Ok(()) => Dispatch::Admitted,
            Err(TrySendError::Full(_)) => {
                ctx.shared.metrics.shed();
                Dispatch::Inline(Box::new(Response::Overloaded))
            }
            Err(TrySendError::Disconnected(_)) => {
                Dispatch::Inline(Box::new(Response::Error("server shutting down".into())))
            }
        }
    }
}

/// Routes one worker completion to its connection — unless the generation
/// token says that connection is gone, in which case the answer dies here.
fn apply_completion(
    ctx: &ReactorCtx,
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    completion: Completion,
) {
    let slot = (completion.token & u64::from(u32::MAX)) as usize;
    let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
        return;
    };
    if conn.state.token != completion.token {
        return; // the slot was reused; this answer's connection hung up
    }
    conn.state.complete(
        completion.request_id,
        &completion.response,
        &ctx.shared.metrics,
        ctx.shared.config.write_high_water,
    );
    conn.state.flush(&mut conn.stream, &ctx.shared.metrics);
    if !conn.state.paused {
        let tok = conn.state.token;
        let mut dispatch = dispatcher(ctx, tok);
        conn.state.pump(
            &mut conn.stream,
            &ctx.shared.metrics,
            ctx.shared.config.write_high_water,
            &mut dispatch,
        );
    }
    settle(ctx, conns, free, slot);
}

/// Retires or re-arms one connection after I/O or a completion.
fn settle(ctx: &ReactorCtx, conns: &mut [Option<Conn>], free: &mut Vec<usize>, slot: usize) {
    let finished = match conns.get_mut(slot).and_then(Option::as_mut) {
        Some(conn) => {
            if conn.state.finished() {
                true
            } else {
                rearm(ctx, conn, slot);
                false
            }
        }
        None => return,
    };
    if finished {
        retire(ctx, conns, slot);
        free.push(slot);
    }
}

/// Unregisters and drops one finished connection.
fn retire(ctx: &ReactorCtx, conns: &mut [Option<Conn>], slot: usize) {
    if let Some(conn) = conns[slot].take() {
        let _ = ctx.poller.delete(&conn.stream);
        ctx.shared
            .metrics
            .write_drained(conn.state.write_pending() as u64);
        ctx.shared.metrics.conn_closed();
    }
}

/// Tells the poller this connection's current interest, skipping the
/// syscall when nothing changed.
fn rearm(ctx: &ReactorCtx, conn: &mut Conn, slot: usize) {
    let want = conn.state.interest(slot + 1);
    let now = (want.readable, want.writable);
    if now != conn.interest {
        conn.interest = now;
        let _ = ctx.poller.modify(&conn.stream, want);
    }
}
