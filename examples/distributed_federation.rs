//! The distributed sFlow protocol in action (the paper's Fig. 9
//! walkthrough): the same federation executed three ways —
//!
//! 1. centralized (the solver run in one place),
//! 2. under the deterministic discrete-event simulator, and
//! 3. on the threaded actor runtime (one thread per service instance,
//!    crossbeam channels as the transport).
//!
//! ```text
//! cargo run --example distributed_federation
//! ```

use sflow::core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow::core::fixtures::paper_fig4_fixture;
use sflow::core::reduction::Plan;
use sflow::runtime::{run_actors, RuntimeConfig};
use sflow::sim::{run_distributed, SimConfig};
use sflow::{ServiceId, ServiceRequirement};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The world of the paper's Fig. 4: a 12-host network with services 0–4
    // placed as in the figure.
    let fx = paper_fig4_fixture();
    let ctx = fx.context();
    let s: Vec<ServiceId> = (0..5).map(ServiceId::new).collect();

    // The requirement of Fig. 9: service 0 feeds both the 1 → 2 → 3 chain
    // and service 4; everything is consumed downstream of node 0's data.
    let req = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[1], s[2]),
        (s[2], s[3]),
        (s[0], s[4]),
        (s[1], s[3]),
    ])?;
    println!("requirement: {req}");
    println!("reduction plan: {}\n", Plan::analyze(&req).describe());

    // 1. Centralized reference.
    let central = SflowAlgorithm::default().federate(&ctx, &req)?;
    println!("centralized sFlow:\n{central}");

    // 2. Discrete-event simulation of sfederate message passing.
    let sim = run_distributed(&ctx, &req, &SimConfig::default())?;
    println!("event-driven simulation:\n{}", sim.flow);
    println!(
        "  {} messages, {} bytes on the wire, {} sink completions,\n  \
         {} local computations ({} conflicts), finished at t = {} µs, \
         longest chain {} hops\n",
        sim.stats.messages,
        sim.stats.bytes,
        sim.stats.completed_sinks,
        sim.stats.computations,
        sim.stats.conflicts,
        sim.stats.duration_us,
        sim.stats.max_hops
    );

    // 3. The threaded actor runtime: same protocol, real concurrency.
    let act = run_actors(&ctx, &req, &RuntimeConfig::default())?;
    println!("actor runtime:\n{}", act.flow);
    println!(
        "  {} actors participated, {} messages, federated in {} µs wall clock\n",
        act.stats.actors, act.stats.messages, act.stats.wall_us
    );

    // All three transports express the same algorithm.
    assert_eq!(central.bandwidth(), sim.flow.bandwidth());
    assert_eq!(central.bandwidth(), act.flow.bandwidth());
    println!(
        "all three executions agree on the bottleneck bandwidth: {}",
        central.bandwidth()
    );
    Ok(())
}
