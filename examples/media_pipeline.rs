//! A media-delivery federation: the workload family that motivated service
//! composition in the first place (the paper's intro cites transcoding and
//! streaming), extended to a DAG the older path-based systems cannot
//! express.
//!
//! Pipeline: an origin server's stream is demuxed; video and audio are
//! transcoded *in parallel* on different nodes; a subtitle service taps the
//! demuxer output too; everything re-muxes before hitting the edge cache
//! that serves the viewer.
//!
//! The example contrasts the DAG federation against forcing the pipeline
//! through a single sequential service path, quantifying the latency the
//! parallel branches save — the paper's core argument for the flow-graph
//! model.
//!
//! ```text
//! cargo run --example media_pipeline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sflow::core::algorithms::{
    sequential_latency, FederationAlgorithm, ServicePathAlgorithm, SflowAlgorithm,
};
use sflow::net::topology::{self, LinkProfile};
use sflow::sim::{run_distributed, SimConfig};
use sflow::{
    Compatibility, FederationContext, OverlayGraph, Placement, ServiceId, ServiceRequirement,
};

const ORIGIN: ServiceId = ServiceId::new(0);
const DEMUX: ServiceId = ServiceId::new(1);
const VIDEO_TRANSCODE: ServiceId = ServiceId::new(2);
const AUDIO_TRANSCODE: ServiceId = ServiceId::new(3);
const SUBTITLES: ServiceId = ServiceId::new(4);
const MUX: ServiceId = ServiceId::new(5);
const EDGE_CACHE: ServiceId = ServiceId::new(6);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let services = [
        ORIGIN,
        DEMUX,
        VIDEO_TRANSCODE,
        AUDIO_TRANSCODE,
        SUBTITLES,
        MUX,
        EDGE_CACHE,
    ];
    // A 30-host access network; three replicas of every processing service.
    let mut rng = StdRng::seed_from_u64(42);
    let profile = LinkProfile::new(200..=2_000, 2_000..=15_000);
    let net = topology::waxman(30, 0.25, 0.3, &profile, &mut rng);
    let placement = Placement::random(&net, &services, 3, &mut rng);
    let overlay = OverlayGraph::build(&net, &placement, &Compatibility::universal())?;
    let all_pairs = overlay.all_pairs();
    let source = overlay.instances_of(ORIGIN)[0];
    let ctx = FederationContext::new(&overlay, &all_pairs, source);

    // The DAG: demux splits the stream, transcoders and subtitles work in
    // parallel, mux merges, cache delivers.
    let req = ServiceRequirement::from_edges([
        (ORIGIN, DEMUX),
        (DEMUX, VIDEO_TRANSCODE),
        (DEMUX, AUDIO_TRANSCODE),
        (DEMUX, SUBTITLES),
        (VIDEO_TRANSCODE, MUX),
        (AUDIO_TRANSCODE, MUX),
        (SUBTITLES, MUX),
        (MUX, EDGE_CACHE),
    ])?;
    println!("requirement: {req}  (shape: {:?})", req.shape());

    // Parallel federation with sFlow.
    let flow = SflowAlgorithm::default().federate(&ctx, &req)?;
    println!("\nsFlow federation:\n{flow}");

    // What a path-only composer must do with the same request: serialize it.
    match ServicePathAlgorithm.federate(&ctx, &req) {
        Ok(path_flow) => {
            let seq =
                sequential_latency(&ctx, &req, &path_flow).expect("sequential chain is connected");
            println!("single-service-path (sequential) latency: {seq}");
            println!(
                "parallel (sFlow) end-to-end latency:      {}",
                flow.latency()
            );
            let speedup = seq.as_micros() as f64 / flow.latency().as_micros().max(1) as f64;
            println!("parallelism speedup: {speedup:.2}×");
        }
        Err(e) => println!("single-service-path composer failed outright: {e}"),
    }

    // The same federation, but actually executed by the distributed
    // protocol — message counts tell the deployment story.
    let outcome = run_distributed(&ctx, &req, &SimConfig::default())?;
    println!(
        "\ndistributed run: {} messages, {} bytes, {} local computations, \
         federated in {} µs of simulated time",
        outcome.stats.messages,
        outcome.stats.bytes,
        outcome.stats.computations,
        outcome.stats.duration_us
    );
    assert_eq!(outcome.flow.selection().len(), req.len());
    Ok(())
}
