//! The paper's running example: a travel-agency service federation
//! (Figs. 1–3 and 5 of the paper).
//!
//! A Travel Engine feeds airline, hotel and attraction data through
//! currency-conversion, map and translation services to a travel agency.
//! The example walks through the paper's four requirement forms — a single
//! service path, optional services, disjoint parallel paths and the generic
//! DAG — federating each over the same overlay and comparing the quality of
//! all algorithms.
//!
//! ```text
//! cargo run --example travel_agency
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sflow::core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, RandomAlgorithm, SflowAlgorithm,
};
use sflow::core::metrics::correctness_coefficient;
use sflow::net::topology::{self, LinkProfile};
use sflow::{
    Compatibility, FederationContext, OverlayGraph, Placement, ServiceId, ServiceRequirement,
};

// The cast, with the paper's names.
const TRAVEL_ENGINE: ServiceId = ServiceId::new(0);
const AIRLINE: ServiceId = ServiceId::new(1);
const HOTEL: ServiceId = ServiceId::new(2);
const ATTRACTION: ServiceId = ServiceId::new(3);
const CURRENCY: ServiceId = ServiceId::new(4);
const MAP: ServiceId = ServiceId::new(5);
const TRANSLATOR: ServiceId = ServiceId::new(6);
const AGENCY: ServiceId = ServiceId::new(7);

fn name(s: ServiceId) -> &'static str {
    match s.as_u32() {
        0 => "TravelEngine",
        1 => "Airline",
        2 => "Hotel",
        3 => "Attraction",
        4 => "Currency",
        5 => "Map",
        6 => "Translator",
        _ => "AgencyA",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared world for all four requirement forms: a 24-host Waxman
    // network with two instances of every intermediate service (two airline
    // companies, two hotel databases, …).
    let services = [
        TRAVEL_ENGINE,
        AIRLINE,
        HOTEL,
        ATTRACTION,
        CURRENCY,
        MAP,
        TRANSLATOR,
        AGENCY,
    ];
    let mut rng = StdRng::seed_from_u64(1977);
    let profile = LinkProfile::new(50..=1000, 1_000..=8_000);
    let net = topology::waxman(24, 0.3, 0.3, &profile, &mut rng);
    let placement = Placement::random(&net, &services, 2, &mut rng);
    // Everything may feed everything downstream here — the requirements
    // constrain the actual flows.
    let overlay = OverlayGraph::build(&net, &placement, &Compatibility::universal())?;
    let all_pairs = overlay.all_pairs();
    let source = overlay.instances_of(TRAVEL_ENGINE)[0];
    let ctx = FederationContext::new(&overlay, &all_pairs, source);
    println!(
        "world: {} hosts, {} overlay instances, {} service links\n",
        net.host_count(),
        overlay.instance_count(),
        overlay.link_count()
    );

    // Fig. 1 — the basic service path: Travel Engine → Hotel → Currency →
    // Agency A.
    let fig1 = ServiceRequirement::path(&[TRAVEL_ENGINE, HOTEL, CURRENCY, AGENCY])?;
    showcase("Fig. 1  service path", &ctx, &fig1);

    // Fig. 2 — optional services: Attraction data flows through either the
    // Map or the Translator. Federate both options; the better one wins.
    let map_option = ServiceRequirement::path(&[TRAVEL_ENGINE, ATTRACTION, MAP, AGENCY])?;
    let translator_option =
        ServiceRequirement::path(&[TRAVEL_ENGINE, ATTRACTION, TRANSLATOR, AGENCY])?;
    let alg = SflowAlgorithm::default();
    let via_map = alg.federate(&ctx, &map_option)?;
    let via_translator = alg.federate(&ctx, &translator_option)?;
    let (label, better) = if via_map.quality().is_better_than(&via_translator.quality()) {
        ("Map", &via_map)
    } else {
        ("Translator", &via_translator)
    };
    println!("Fig. 2  optional services: federating both options");
    println!("  via Map        → {}", via_map.quality());
    println!("  via Translator → {}", via_translator.quality());
    println!("  picked the {label} option: {}\n", better.quality());

    // Fig. 3 — disjoint service paths: airline, hotel and attraction data
    // travel in three parallel streams.
    let fig3 = ServiceRequirement::from_edges([
        (TRAVEL_ENGINE, AIRLINE),
        (AIRLINE, CURRENCY),
        (CURRENCY, AGENCY),
        (TRAVEL_ENGINE, HOTEL),
        (HOTEL, AGENCY),
        (TRAVEL_ENGINE, ATTRACTION),
        (ATTRACTION, MAP),
        (MAP, AGENCY),
    ])?;
    showcase("Fig. 3  disjoint service paths", &ctx, &fig3);

    // Fig. 5 — the generic DAG: hotel results feed both the currency and the
    // map services; the translator consumes attraction and map output; all
    // merge at the agency.
    let fig5 = ServiceRequirement::from_edges([
        (TRAVEL_ENGINE, AIRLINE),
        (TRAVEL_ENGINE, HOTEL),
        (TRAVEL_ENGINE, ATTRACTION),
        (AIRLINE, CURRENCY),
        (HOTEL, CURRENCY),
        (HOTEL, MAP),
        (ATTRACTION, MAP),
        (ATTRACTION, TRANSLATOR),
        (MAP, TRANSLATOR),
        (CURRENCY, AGENCY),
        (TRANSLATOR, AGENCY),
    ])?;
    showcase("Fig. 5  generic DAG requirement", &ctx, &fig5);

    Ok(())
}

/// Federates `req` with every algorithm and prints a comparison.
fn showcase(title: &str, ctx: &FederationContext<'_>, req: &ServiceRequirement) {
    println!(
        "{title}: {} services, {} streams",
        req.len(),
        req.edge_count()
    );
    let opt = GlobalOptimalAlgorithm.federate(ctx, req).ok();
    let algos: [(&str, &dyn FederationAlgorithm); 4] = [
        ("sflow", &SflowAlgorithm::default()),
        ("global-optimal", &GlobalOptimalAlgorithm),
        ("fixed", &FixedAlgorithm),
        ("random", &RandomAlgorithm::with_seed(7)),
    ];
    for (label, alg) in algos {
        match alg.federate(ctx, req) {
            Ok(flow) => {
                let corr = opt
                    .as_ref()
                    .map(|o| format!("{:.2}", correctness_coefficient(&flow, o)))
                    .unwrap_or_else(|| "-".into());
                println!("  {label:<15} {}  correctness {corr}", flow.quality());
                if label == "sflow" {
                    for (sid, inst) in flow.instances() {
                        println!("      {:<12} ← {}", name(*sid), inst);
                    }
                }
            }
            Err(e) => println!("  {label:<15} failed: {e}"),
        }
    }
    println!();
}
