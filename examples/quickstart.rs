//! Quickstart: build a world from scratch, federate a requirement, inspect
//! the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sflow::core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow::{
    Bandwidth, Compatibility, FederationContext, Latency, OverlayGraph, Placement, Qos, ServiceId,
    ServiceInstance, ServiceRequirement, UnderlyingNetwork,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The underlying (physical) network: six hosts, a handful of links,
    //    each labelled (bandwidth, latency) like the paper's Fig. 4.
    let q = |bw: u64, ms: u64| Qos::new(Bandwidth::kbps(bw), Latency::from_millis(ms));
    let mut b = UnderlyingNetwork::builder();
    let h = b.add_hosts(6);
    b.link(h[0], h[1], q(800, 2))
        .link(h[1], h[2], q(600, 3))
        .link(h[2], h[5], q(700, 2))
        .link(h[0], h[3], q(300, 1))
        .link(h[3], h[4], q(250, 1))
        .link(h[4], h[5], q(400, 1))
        .link(h[1], h[4], q(500, 4));
    let net = b.build();
    println!(
        "underlying network: {} hosts, {} links, connected = {}",
        net.host_count(),
        net.link_count(),
        net.is_connected()
    );

    // 2. Services and placement. Service 1 (a filter) and service 2 (a
    //    transcoder) each have two instances; the consumer-facing sink has
    //    one.
    let s: Vec<ServiceId> = (0..4).map(ServiceId::new).collect();
    let mut placement = Placement::new();
    placement.add(ServiceInstance::new(s[0], h[0])); // source: content engine
    placement.add(ServiceInstance::new(s[1], h[1]));
    placement.add(ServiceInstance::new(s[1], h[3]));
    placement.add(ServiceInstance::new(s[2], h[2]));
    placement.add(ServiceInstance::new(s[2], h[4]));
    placement.add(ServiceInstance::new(s[3], h[5])); // sink: the consumer side

    // 3. Compatibility: which service can feed which (Sec. 2.2).
    let compat = Compatibility::from_pairs([
        (s[0], s[1]),
        (s[1], s[2]),
        (s[2], s[3]),
        (s[0], s[2]),
        (s[1], s[3]),
    ]);

    // 4. The service overlay: one node per instance, service links labelled
    //    with the shortest-widest QoS through the underlying network.
    let overlay = OverlayGraph::build(&net, &placement, &compat)?;
    println!(
        "overlay: {} instances, {} service links",
        overlay.instance_count(),
        overlay.link_count()
    );
    for e in overlay.graph().edges() {
        println!(
            "  {} → {}  {}",
            overlay.instance(e.from),
            overlay.instance(e.to),
            e.weight
        );
    }

    // 5. A service requirement: a diamond — the filter and the transcoder
    //    work in parallel before the results merge at the sink.
    let req =
        ServiceRequirement::from_edges([(s[0], s[1]), (s[0], s[2]), (s[1], s[3]), (s[2], s[3])])?;
    println!("\nrequirement: {req}");

    // 6. Federate with sFlow (2-hop local views, as in the paper).
    let all_pairs = overlay.all_pairs();
    let source = overlay.instances_of(s[0])[0];
    let ctx = FederationContext::new(&overlay, &all_pairs, source);
    let flow = SflowAlgorithm::default().federate(&ctx, &req)?;

    println!("\n{flow}");
    println!(
        "bottleneck bandwidth = {}, end-to-end latency = {}",
        flow.bandwidth(),
        flow.latency()
    );
    Ok(())
}
