//! Agile federation: instance failures and minimal-disruption repair.
//!
//! A media-ish federation runs; we kill the selected instance of one service
//! (then two at once), rebuild the overlay without the casualties, and
//! repair. Surviving selections are pinned — only the broken parts of the
//! flow graph move.
//!
//! ```text
//! cargo run --example failure_recovery
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sflow::core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow::core::repair::repair;
use sflow::net::topology::{self, LinkProfile};
use sflow::{
    Compatibility, FederationContext, OverlayGraph, Placement, ServiceId, ServiceRequirement,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let services: Vec<ServiceId> = (0..5).map(ServiceId::new).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let net = topology::waxman(22, 0.3, 0.3, &LinkProfile::default(), &mut rng);
    let placement = Placement::random(&net, &services, 3, &mut rng);
    let overlay = OverlayGraph::build(&net, &placement, &Compatibility::universal())?;
    let ap = overlay.all_pairs();
    let source = overlay.instances_of(services[0])[0];
    let ctx = FederationContext::new(&overlay, &ap, source);

    let req = ServiceRequirement::from_edges([
        (services[0], services[1]),
        (services[0], services[2]),
        (services[1], services[3]),
        (services[2], services[3]),
        (services[3], services[4]),
    ])?;

    let flow = SflowAlgorithm::default().federate(&ctx, &req)?;
    println!("initial federation:\n{flow}");

    // Failure 1: the selected instance of service 1 dies.
    let victim = flow.instances()[&services[1]];
    println!("✗ instance {victim} fails\n");
    let degraded = overlay.without_instances(&[victim]);
    let ap2 = degraded.all_pairs();
    let src2 = degraded
        .node_of(overlay.instance(source))
        .expect("source survived");
    let ctx2 = FederationContext::new(&degraded, &ap2, src2);
    let outcome = repair(&ctx2, &req, &flow)?;
    println!("repaired federation:\n{}", outcome.flow);
    println!(
        "moved: {:?}; preserved: {:?}; full re-federation: {}\n",
        outcome.reselected, outcome.preserved, outcome.full_refederation
    );

    // Failure 2: two more selected instances die simultaneously.
    let victims = [
        outcome.flow.instances()[&services[2]],
        outcome.flow.instances()[&services[3]],
    ];
    println!("✗ instances {} and {} fail\n", victims[0], victims[1]);
    let degraded2 = degraded.without_instances(&victims);
    let ap3 = degraded2.all_pairs();
    let src3 = degraded2
        .node_of(overlay.instance(source))
        .expect("source survived");
    let ctx3 = FederationContext::new(&degraded2, &ap3, src3);
    let outcome2 = repair(&ctx3, &req, &outcome.flow)?;
    println!("repaired federation:\n{}", outcome2.flow);
    println!(
        "moved: {:?}; preserved: {:?}; full re-federation: {}",
        outcome2.reselected, outcome2.preserved, outcome2.full_refederation
    );

    // Render the final flow for graphviz users.
    println!("\nDOT of the final flow graph:\n{}", outcome2.flow.to_dot());
    Ok(())
}
