//! Consistency of the three executions of the sFlow algorithm: centralized
//! solver, discrete-event simulation, threaded actor runtime.

use sflow::core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow::core::fixtures::random_fixture;
use sflow::runtime::{run_actors, RuntimeConfig};
use sflow::sim::{run_distributed, SimConfig};
use sflow::{ServiceId, ServiceRequirement};

fn services(n: u32) -> Vec<ServiceId> {
    (0..n).map(ServiceId::new).collect()
}

fn worlds_and_requirements() -> Vec<(ServiceRequirement, u64)> {
    let s = services(6);
    let chain = ServiceRequirement::path(&s[..4]).unwrap();
    let diamond =
        ServiceRequirement::from_edges([(s[0], s[1]), (s[0], s[2]), (s[1], s[3]), (s[2], s[3])])
            .unwrap();
    let tree =
        ServiceRequirement::from_edges([(s[0], s[1]), (s[0], s[2]), (s[1], s[3]), (s[1], s[4])])
            .unwrap();
    let dag = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[0], s[2]),
        (s[1], s[3]),
        (s[2], s[3]),
        (s[2], s[4]),
        (s[3], s[5]),
        (s[4], s[5]),
    ])
    .unwrap();
    vec![(chain, 11), (diamond, 22), (tree, 33), (dag, 44)]
}

#[test]
fn simulation_matches_centralized_selection_quality() {
    for (req, base) in worlds_and_requirements() {
        for seed in 0..4u64 {
            let s = services(6);
            let fx = random_fixture(18, &s, 3, None, base + seed);
            let ctx = fx.context();
            let Ok(central) = SflowAlgorithm::default().federate(&ctx, &req) else {
                continue;
            };
            let sim = run_distributed(&ctx, &req, &SimConfig::default())
                .unwrap_or_else(|e| panic!("sim failed on seed {seed}: {e}"));
            assert_eq!(
                sim.flow.bandwidth(),
                central.bandwidth(),
                "req {req} seed {seed}"
            );
            assert_eq!(sim.flow.selection().len(), req.len());
        }
    }
}

#[test]
fn actor_runtime_matches_simulation() {
    for (req, base) in worlds_and_requirements() {
        for seed in 0..3u64 {
            let s = services(6);
            let fx = random_fixture(18, &s, 3, None, 1000 + base + seed);
            let ctx = fx.context();
            let Ok(sim) = run_distributed(&ctx, &req, &SimConfig::default()) else {
                continue;
            };
            let act = run_actors(&ctx, &req, &RuntimeConfig::default())
                .unwrap_or_else(|e| panic!("actors failed on seed {seed}: {e}"));
            assert_eq!(act.flow.bandwidth(), sim.flow.bandwidth());
            assert_eq!(act.flow.selection().len(), req.len());
        }
    }
}

#[test]
fn simulation_is_fully_deterministic() {
    let s = services(6);
    let (req, _) = &worlds_and_requirements()[3];
    let fx = random_fixture(20, &s, 3, None, 999);
    let ctx = fx.context();
    let a = run_distributed(&ctx, req, &SimConfig::default()).unwrap();
    let b = run_distributed(&ctx, req, &SimConfig::default()).unwrap();
    assert_eq!(a.flow.selection(), b.flow.selection());
    assert_eq!(a.stats, b.stats);
}

#[test]
fn message_counts_scale_with_requirement_edges() {
    // Each requirement edge induces at least one sfederate hand-off.
    let s = services(6);
    let (dag, _) = worlds_and_requirements().pop().unwrap();
    let fx = random_fixture(18, &s, 3, None, 77);
    let ctx = fx.context();
    let out = run_distributed(&ctx, &dag, &SimConfig::default()).unwrap();
    assert!(out.stats.messages >= dag.edge_count());
    // And stays bounded: forwards + pin updates + reports.
    let bound = dag.edge_count() * (dag.len() + 2) + 4 * dag.sinks().len() * dag.len();
    assert!(
        out.stats.messages <= bound,
        "{} messages exceeds bound {bound}",
        out.stats.messages
    );
}

#[test]
fn hop_horizon_affects_only_quality_not_validity() {
    let s = services(6);
    let (dag, _) = worlds_and_requirements().pop().unwrap();
    for horizon in [1usize, 2, 4] {
        let fx = random_fixture(18, &s, 3, None, 555);
        let ctx = fx.context();
        let cfg = SimConfig {
            hop_limit: Some(horizon),
            ..SimConfig::default()
        };
        match run_distributed(&ctx, &dag, &cfg) {
            Ok(out) => assert_eq!(out.flow.selection().len(), dag.len()),
            Err(_) => {
                // A 1-hop horizon may legitimately make a requirement
                // infeasible; larger horizons on this seed must not.
                assert_eq!(horizon, 1, "horizon {horizon} should succeed");
            }
        }
    }
}
