//! Scale smoke tests: the stack stays correct and responsive well beyond the
//! paper's 50-node evaluations.

use sflow::core::algorithms::{FederationAlgorithm, SflowAlgorithm};
use sflow::core::fixtures::random_fixture_with;
use sflow::runtime::{run_actors, RuntimeConfig};
use sflow::sim::linkstate::flood_link_state;
use sflow::sim::{run_distributed, SimConfig};
use sflow::{ServiceId, ServiceRequirement};

fn services(n: u32) -> Vec<ServiceId> {
    (0..n).map(ServiceId::new).collect()
}

#[test]
fn hundred_host_world_federates_under_all_transports() {
    let s = services(8);
    let req = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[0], s[2]),
        (s[1], s[3]),
        (s[2], s[4]),
        (s[3], s[5]),
        (s[4], s[5]),
        (s[5], s[6]),
        (s[5], s[7]),
    ])
    .unwrap();
    let fx = random_fixture_with(100, &s, 4, None, 4242, Some(3));
    assert!(fx.net.is_connected());
    let ctx = fx.context();

    let central = SflowAlgorithm::default().federate(&ctx, &req).unwrap();
    assert_eq!(central.selection().len(), 8);

    let sim = run_distributed(&ctx, &req, &SimConfig::default()).unwrap();
    assert_eq!(sim.flow.selection().len(), 8);
    assert_eq!(sim.flow.bandwidth(), central.bandwidth());

    // 32 instances → 32 actor threads; must terminate cleanly.
    let act = run_actors(&ctx, &req, &RuntimeConfig::default()).unwrap();
    assert_eq!(act.flow.selection().len(), 8);
    assert_eq!(act.flow.bandwidth(), central.bandwidth());
}

#[test]
fn link_state_flooding_converges_at_scale() {
    let s = services(4);
    let fx = random_fixture_with(120, &s, 2, None, 777, None);
    let out = flood_link_state(&fx.net);
    assert!(out.all_converged(&fx.net));
    assert!(out.stats.converged_at_us > 0);
}
