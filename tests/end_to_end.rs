//! Cross-crate integration tests: worlds built by `sflow-net`, federated by
//! every `sflow-core` algorithm, validated against the requirement.

use sflow::core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, RandomAlgorithm,
    ServicePathAlgorithm, SflowAlgorithm,
};
use sflow::core::fixtures::random_fixture;
use sflow::core::metrics::{bandwidth_ratio, correctness_coefficient};
use sflow::{FlowGraph, ServiceId, ServiceRequirement};

fn services(n: u32) -> Vec<ServiceId> {
    (0..n).map(ServiceId::new).collect()
}

/// Flow-graph/requirement consistency: exactly one instance per required
/// service, providing that service; one stream per requirement edge, with
/// endpoints matching the selection.
fn assert_valid(flow: &FlowGraph, req: &ServiceRequirement, fx: &sflow::core::fixtures::Fixture) {
    assert_eq!(flow.selection().len(), req.len());
    for sid in req.services() {
        let node = flow.instance_for(sid).expect("service selected");
        assert_eq!(fx.overlay.instance(node).service, sid);
    }
    assert_eq!(flow.edges().len(), req.edge_count());
    for e in flow.edges() {
        assert_eq!(flow.instance_for(e.from), Some(e.from_node));
        assert_eq!(flow.instance_for(e.to), Some(e.to_node));
        assert_eq!(e.overlay_path.first(), Some(&e.from_node));
        assert_eq!(e.overlay_path.last(), Some(&e.to_node));
    }
}

#[test]
fn every_algorithm_produces_valid_flow_graphs() {
    let s = services(5);
    let req = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[0], s[2]),
        (s[1], s[3]),
        (s[2], s[3]),
        (s[3], s[4]),
    ])
    .unwrap();
    for seed in 0..8u64 {
        let fx = random_fixture(18, &s, 3, None, seed);
        let ctx = fx.context();
        let algos: [&dyn FederationAlgorithm; 5] = [
            &SflowAlgorithm::default(),
            &GlobalOptimalAlgorithm,
            &FixedAlgorithm,
            &RandomAlgorithm::with_seed(seed),
            &ServicePathAlgorithm,
        ];
        for alg in algos {
            if let Ok(flow) = alg.federate(&ctx, &req) {
                assert_valid(&flow, &req, &fx);
            }
        }
    }
}

#[test]
fn optimal_weakly_dominates_every_heuristic() {
    let s = services(6);
    let req = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[0], s[2]),
        (s[1], s[3]),
        (s[2], s[4]),
        (s[3], s[5]),
        (s[4], s[5]),
        (s[1], s[4]),
    ])
    .unwrap();
    for seed in 0..8u64 {
        let fx = random_fixture(20, &s, 2, None, 100 + seed);
        let ctx = fx.context();
        let opt = GlobalOptimalAlgorithm.federate(&ctx, &req).unwrap();
        let algos: [&dyn FederationAlgorithm; 3] = [
            &SflowAlgorithm::default(),
            &FixedAlgorithm,
            &RandomAlgorithm::with_seed(seed),
        ];
        for alg in algos {
            if let Ok(flow) = alg.federate(&ctx, &req) {
                assert!(
                    flow.bandwidth() <= opt.bandwidth(),
                    "{} beat the optimum on seed {seed}",
                    alg.name()
                );
                let ratio = bandwidth_ratio(&flow, &opt);
                assert!((0.0..=1.0).contains(&ratio));
                let corr = correctness_coefficient(&flow, &opt);
                assert!((0.0..=1.0).contains(&corr));
            }
        }
    }
}

#[test]
fn sflow_full_view_equals_optimum_on_path_requirements() {
    // The baseline algorithm (what sFlow runs on chains) is provably optimal
    // for single-path requirements — verify against exhaustive search.
    let s = services(5);
    let req = ServiceRequirement::path(&s).unwrap();
    for seed in 0..10u64 {
        let fx = random_fixture(15, &s, 3, None, 200 + seed);
        let ctx = fx.context();
        let opt = GlobalOptimalAlgorithm.federate(&ctx, &req).unwrap();
        let sflow = SflowAlgorithm::with_full_view()
            .federate(&ctx, &req)
            .unwrap();
        assert_eq!(sflow.bandwidth(), opt.bandwidth(), "seed {seed}");
        assert_eq!(sflow.latency(), opt.latency(), "seed {seed}");
    }
}

#[test]
fn service_path_equals_sflow_on_chains_and_degrades_on_dags() {
    let s = services(5);
    let chain = ServiceRequirement::path(&s).unwrap();
    let dag = ServiceRequirement::from_edges([
        (s[0], s[1]),
        (s[0], s[2]),
        (s[1], s[3]),
        (s[2], s[3]),
        (s[3], s[4]),
    ])
    .unwrap();
    let mut sp_no_worse_than_sflow_on_chain = 0;
    let mut trials = 0;
    for seed in 0..6u64 {
        let fx = random_fixture(16, &s, 2, None, 300 + seed);
        let ctx = fx.context();
        let sp_chain = ServicePathAlgorithm.federate(&ctx, &chain).unwrap();
        let sf_chain = SflowAlgorithm::with_full_view()
            .federate(&ctx, &chain)
            .unwrap();
        assert_eq!(sp_chain.quality(), sf_chain.quality(), "seed {seed}");
        trials += 1;
        // On the DAG the serialized composer is never strictly better than
        // sFlow in end-to-end latency.
        if let (Ok(sp), Ok(sf)) = (
            ServicePathAlgorithm.federate(&ctx, &dag),
            SflowAlgorithm::with_full_view().federate(&ctx, &dag),
        ) {
            assert!(sp.latency() >= sf.latency() || sp.bandwidth() <= sf.bandwidth());
            sp_no_worse_than_sflow_on_chain += 1;
        }
    }
    assert!(trials > 0);
    let _ = sp_no_worse_than_sflow_on_chain;
}

#[test]
fn source_instance_is_always_respected() {
    let s = services(4);
    let req = ServiceRequirement::from_edges([(s[0], s[1]), (s[1], s[2]), (s[1], s[3])]).unwrap();
    for seed in 0..5u64 {
        let fx = random_fixture(12, &s, 3, None, 400 + seed);
        let ctx = fx.context();
        let algos: [&dyn FederationAlgorithm; 4] = [
            &SflowAlgorithm::default(),
            &GlobalOptimalAlgorithm,
            &FixedAlgorithm,
            &RandomAlgorithm::with_seed(seed),
        ];
        for alg in algos {
            if let Ok(flow) = alg.federate(&ctx, &req) {
                assert_eq!(flow.instance_for(s[0]), Some(fx.source), "{}", alg.name());
            }
        }
    }
}
