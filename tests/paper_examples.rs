//! Tests binding the implementation to the paper's concrete examples.

use sflow::core::algorithms::{FederationAlgorithm, GlobalOptimalAlgorithm, SflowAlgorithm};
use sflow::core::fixtures::paper_fig4_fixture;
use sflow::core::reduction::{self, Plan};
use sflow::core::{AbstractGraph, RequirementShape, ServiceRequirement};
use sflow::{HostId, ServiceId};

fn s(i: u32) -> ServiceId {
    ServiceId::new(i)
}

/// Sec. 2.2 discusses Fig. 4: "We choose node 5 over node 7 for service 1,
/// and node 9 over node 11 for service 2, because they offer a service flow
/// graph with higher overall bandwidth and shorter end-to-end latency."
#[test]
fn fig4_selects_node5_and_node9() {
    let fx = paper_fig4_fixture();
    let ctx = fx.context();
    let req = ServiceRequirement::path(&[s(0), s(1), s(2), s(3)]).unwrap();
    let flow = SflowAlgorithm::with_full_view()
        .federate(&ctx, &req)
        .unwrap();
    let host_of = |sid: u32| fx.overlay.instance(flow.instance_for(s(sid)).unwrap()).host;
    assert_eq!(host_of(1), HostId::new(5), "service 1 → node 5");
    assert_eq!(host_of(2), HostId::new(9), "service 2 → node 9");
    // And that choice is globally optimal.
    let opt = GlobalOptimalAlgorithm.federate(&ctx, &req).unwrap();
    assert_eq!(flow.quality(), opt.quality());
}

/// Fig. 6: the abstract graph populates each required service with its
/// instances and labels edges with overlay shortest-widest QoS.
#[test]
fn fig6_abstract_graph_structure() {
    let fx = paper_fig4_fixture();
    let ctx = fx.context();
    let req = ServiceRequirement::path(&[s(0), s(1), s(2), s(3)]).unwrap();
    let ag = AbstractGraph::build(&ctx, &req).unwrap();
    // Source pinned to 1 instance; services 1 and 2 have two instances each;
    // service 3 has one.
    assert_eq!(ag.instances_of(s(0)).len(), 1);
    assert_eq!(ag.instances_of(s(1)).len(), 2);
    assert_eq!(ag.instances_of(s(2)).len(), 2);
    assert_eq!(ag.instances_of(s(3)).len(), 1);
    // Layered edges: 1×2 + 2×2 + 2×1 = 8 (all pairs connected — Fig. 4's
    // network is connected).
    assert_eq!(ag.edge_count(), 8);
}

/// Fig. 8: the example requirement decomposes by isolating the split-merge
/// block between services 1 and 4, then path reduction.
#[test]
fn fig8_reduction_pipeline() {
    let req = ServiceRequirement::from_edges([
        (s(0), s(1)),
        (s(1), s(2)),
        (s(1), s(3)),
        (s(2), s(4)),
        (s(3), s(4)),
        (s(4), s(5)),
        (s(0), s(6)),
        (s(6), s(5)),
    ])
    .unwrap();
    let block = reduction::find_split_merge(&req).unwrap();
    assert_eq!(block.split, s(1));
    assert_eq!(block.merge, s(4));
    // Inner is the diamond (a disjoint-paths bundle after reduction).
    assert_eq!(block.inner.shape(), RequirementShape::DisjointPaths);
    // Outer is two disjoint chains 0→1→4→5 and 0→6→5.
    assert_eq!(block.outer.shape(), RequirementShape::DisjointPaths);
    let plan = Plan::analyze(&req);
    assert_eq!(
        plan.describe(),
        "split-merge(s1..s4; inner: parallel×2, outer: parallel×2)"
    );
}

/// Figs. 1–3: the requirement taxonomy of Sec. 2.1.
#[test]
fn requirement_taxonomy() {
    // Fig. 1: Travel Engine → Hotel → Currency → Agency.
    let fig1 = ServiceRequirement::path(&[s(0), s(2), s(4), s(7)]).unwrap();
    assert_eq!(fig1.shape(), RequirementShape::Path);

    // Fig. 3: three disjoint paths.
    let fig3 = ServiceRequirement::from_edges([
        (s(0), s(1)),
        (s(1), s(4)),
        (s(4), s(7)),
        (s(0), s(2)),
        (s(2), s(7)),
        (s(0), s(3)),
        (s(3), s(5)),
        (s(5), s(7)),
    ])
    .unwrap();
    assert_eq!(fig3.shape(), RequirementShape::DisjointPaths);

    // Fig. 5: hotel feeds currency and map; translator merges map +
    // attraction streams — a generic DAG.
    let fig5 = ServiceRequirement::from_edges([
        (s(0), s(1)),
        (s(0), s(2)),
        (s(0), s(3)),
        (s(1), s(4)),
        (s(2), s(4)),
        (s(2), s(5)),
        (s(3), s(5)),
        (s(3), s(6)),
        (s(5), s(6)),
        (s(4), s(7)),
        (s(6), s(7)),
    ])
    .unwrap();
    assert_eq!(fig5.shape(), RequirementShape::Dag);
    assert_eq!(fig5.source(), s(0));
    assert_eq!(fig5.sinks(), vec![s(7)]);
}

/// The paper's Sec. 3.2 complexity claim, exercised end to end through the
/// sat crate: satisfiability ⇔ MSFG feasibility on the Fig. 7 instance.
#[test]
fn theorem1_on_fig7() {
    use sflow::sat::cnf::{Cnf, Lit, Var};
    use sflow::sat::{dpll, msfg, reduction as satred};
    let v = |i: u32| Var::new(i);
    let mut f = Cnf::new(4);
    f.add_clause([
        Lit::pos(v(0)),
        Lit::neg(v(1)),
        Lit::pos(v(2)),
        Lit::pos(v(3)),
    ]);
    f.add_clause([Lit::neg(v(0)), Lit::pos(v(1)), Lit::neg(v(2))]);
    f.add_clause([Lit::pos(v(0)), Lit::neg(v(1)), Lit::neg(v(3))]);
    f.add_clause([Lit::pos(v(1)), Lit::pos(v(2))]);
    let inst = satred::sat_to_msfg(&f);
    assert_eq!(dpll::solve(&f).is_some(), msfg::is_feasible(&inst));
}
