//! Workspace-level property tests: random worlds × random requirements,
//! checking the invariants every federation must uphold.

use proptest::prelude::*;
use sflow::core::algorithms::{
    FederationAlgorithm, FixedAlgorithm, GlobalOptimalAlgorithm, RandomAlgorithm, SflowAlgorithm,
};
use sflow::core::fixtures::random_fixture;
use sflow::core::metrics::correctness_coefficient;
use sflow::{Bandwidth, ServiceId, ServiceRequirement};

/// A random requirement over `n` services: spanning edges from earlier
/// services plus extra forward edges from a mask.
fn requirement_strategy() -> impl Strategy<Value = ServiceRequirement> {
    (4usize..7).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..n, n - 1);
        let extra = proptest::collection::vec(any::<bool>(), n * n);
        (parents, extra).prop_map(move |(parents, extra)| {
            let s: Vec<ServiceId> = (0..n as u32).map(ServiceId::new).collect();
            let mut b = ServiceRequirement::builder();
            for i in 1..n {
                let p = parents[i - 1] % i;
                b.edge(s[p], s[i]);
            }
            for i in 0..n {
                for j in (i + 1)..n {
                    if extra[i * n + j] {
                        b.edge(s[i], s[j]);
                    }
                }
            }
            b.build().expect("forward edges over a rooted DAG")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn federations_satisfy_requirements(
        req in requirement_strategy(),
        seed in 0u64..500,
    ) {
        let services: Vec<ServiceId> = req.services();
        let fx = random_fixture(14, &services, 2, None, seed);
        let ctx = fx.context();
        let algos: [&dyn FederationAlgorithm; 4] = [
            &SflowAlgorithm::default(),
            &GlobalOptimalAlgorithm,
            &FixedAlgorithm,
            &RandomAlgorithm::with_seed(seed),
        ];
        for alg in algos {
            if let Ok(flow) = alg.federate(&ctx, &req) {
                prop_assert_eq!(flow.selection().len(), req.len());
                prop_assert_eq!(flow.edges().len(), req.edge_count());
                prop_assert!(flow.bandwidth() > Bandwidth::ZERO);
                for e in flow.edges() {
                    // Stream bandwidth can never exceed the flow bottleneck
                    // … wait, it's the other way: the bottleneck can never
                    // exceed any stream's bandwidth.
                    prop_assert!(flow.bandwidth() <= e.qos.bandwidth);
                }
            }
        }
    }

    #[test]
    fn optimum_dominates_and_coefficients_are_probabilities(
        req in requirement_strategy(),
        seed in 0u64..500,
    ) {
        let services: Vec<ServiceId> = req.services();
        let fx = random_fixture(14, &services, 2, None, seed ^ 0xDEAD);
        let ctx = fx.context();
        let Ok(opt) = GlobalOptimalAlgorithm.federate(&ctx, &req) else {
            return Ok(());
        };
        for alg in [&SflowAlgorithm::default() as &dyn FederationAlgorithm, &FixedAlgorithm] {
            if let Ok(flow) = alg.federate(&ctx, &req) {
                prop_assert!(flow.bandwidth() <= opt.bandwidth());
                let c = correctness_coefficient(&flow, &opt);
                prop_assert!((0.0..=1.0).contains(&c));
            }
        }
        // sFlow with full view on a *path* requirement is exactly optimal —
        // covered separately in end_to_end; here check it never fails when
        // the optimum exists on a connected overlay.
        prop_assert!(SflowAlgorithm::with_full_view().federate(&ctx, &req).is_ok());
    }

    #[test]
    fn distributed_run_is_valid_and_deterministic(
        req in requirement_strategy(),
        seed in 0u64..200,
    ) {
        use sflow::sim::{run_distributed, SimConfig};
        let services: Vec<ServiceId> = req.services();
        let fx = random_fixture(14, &services, 2, None, seed ^ 0xBEEF);
        let ctx = fx.context();
        let Ok(a) = run_distributed(&ctx, &req, &SimConfig::default()) else {
            return Ok(());
        };
        let b = run_distributed(&ctx, &req, &SimConfig::default()).unwrap();
        prop_assert_eq!(a.flow.selection(), b.flow.selection());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.flow.selection().len(), req.len());
    }
}
